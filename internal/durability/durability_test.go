package durability

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/graph"
)

// The fixture mirrors the incremental engine tests: a model trained the
// usual way plus a multi-component target graph (disjoint union of three
// dataset analogs). Training is shared across tests; every test gets its
// own clone of the target.
var (
	fixOnce   sync.Once
	fixModel  *core.Model
	fixTarget *graph.Graph
	fixBound  int // node-id bound of the first block, keeps deltas local
)

func fixture(t *testing.T) (*graph.Graph, *core.Model) {
	t.Helper()
	fixOnce.Do(func() {
		src := datasets.MustByName("crime", 1).Source.Reduced()
		fixModel = core.Train(src.Project(), src, core.TrainOptions{Seed: 1, Epochs: 15})
		n := 0
		var parts []*graph.Graph
		for _, name := range []string{"crime", "hosts", "pschool"} {
			parts = append(parts, datasets.MustByName(name, 1).Target.Reduced().Project())
		}
		for _, p := range parts {
			n += p.NumNodes()
		}
		fixTarget = graph.New(n)
		off := 0
		for _, p := range parts {
			for _, e := range p.Edges() {
				fixTarget.AddWeight(off+e.U, off+e.V, e.W)
			}
			off += p.NumNodes()
		}
		fixBound = parts[0].NumNodes()
	})
	return fixTarget.Clone(), fixModel
}

func applyToShadow(g *graph.Graph, op graph.DeltaOp) {
	top := op.U
	if op.V > top {
		top = op.V
	}
	g.EnsureNodes(top + 1)
	switch op.Kind {
	case graph.DeltaAdd:
		g.AddWeight(op.U, op.V, op.W)
	case graph.DeltaRemove:
		g.RemoveEdge(op.U, op.V)
	case graph.DeltaSet:
		g.SetWeight(op.U, op.V, op.W)
	}
}

// deltaWalk is a reproducible delta stream against the fixture: batches
// confined to the first dataset block (so recovery recomputation stays
// cheap) plus the shadow graph after each prefix — shadows[k] is the
// graph with batches[0..k-1] applied.
type deltaWalk struct {
	batches [][]graph.DeltaOp
	shadows []*graph.Graph
}

func makeWalk(g *graph.Graph, n, batchSize int) *deltaWalk {
	w := &deltaWalk{shadows: []*graph.Graph{g.Clone()}}
	rng := rand.New(rand.NewSource(7))
	shadow := g.Clone()
	for i := 0; i < n; i++ {
		var edges []graph.Edge
		for _, e := range shadow.Edges() {
			if e.V < fixBound {
				edges = append(edges, e)
			}
		}
		var ops []graph.DeltaOp
		for len(ops) < batchSize {
			switch {
			case len(edges) > 0 && rng.Intn(3) != 0:
				e := edges[rng.Intn(len(edges))]
				if rng.Intn(2) == 0 {
					ops = append(ops, graph.DeltaOp{Kind: graph.DeltaAdd, U: e.U, V: e.V, W: 1})
				} else {
					ops = append(ops, graph.DeltaOp{Kind: graph.DeltaRemove, U: e.U, V: e.V})
				}
			default:
				u, v := rng.Intn(fixBound), rng.Intn(fixBound)
				if u == v {
					continue
				}
				ops = append(ops, graph.DeltaOp{Kind: graph.DeltaSet, U: u, V: v, W: 1 + rng.Intn(3)})
			}
		}
		for _, op := range ops {
			applyToShadow(shadow, op)
		}
		w.batches = append(w.batches, ops)
		w.shadows = append(w.shadows, shadow.Clone())
	}
	return w
}

// golden renders the from-scratch serial reconstruction of g — the byte
// string every recovered session must reproduce.
func golden(t *testing.T, g *graph.Graph, m *core.Model, opts core.Options) []byte {
	t.Helper()
	res, err := core.ReconstructContext(context.Background(), g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return render(t, res)
}

func render(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Hypergraph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyDir copies a session directory into a fresh temp dir, the
// crash-simulation primitive: the original keeps running, the copy is
// the "disk state at the moment of the crash".
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func forceRotate(t *testing.T, s *Session) {
	t.Helper()
	s.mu.Lock()
	err := s.rotateLocked()
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

// resumeAndCheck recovers dir and asserts the recovered session's next
// Apply is byte-identical to an uninterrupted serial rebuild at the
// expected sequence, with the expected recovery outcome.
func resumeAndCheck(t *testing.T, dir string, m *core.Model, opts core.Options, o Options,
	wantApplies int, wantOutcome string, wantGolden []byte) *Session {
	t.Helper()
	s, err := Resume(dir, m, opts, 0, o)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if got := s.Applies(); got != wantApplies {
		t.Fatalf("recovered applies = %d, want %d", got, wantApplies)
	}
	if got := s.Stats().Outcome; got != wantOutcome {
		t.Fatalf("recovery outcome = %q, want %q", got, wantOutcome)
	}
	res, err := s.Apply(context.Background(), nil)
	if err != nil {
		t.Fatalf("post-recovery Apply: %v", err)
	}
	if !bytes.Equal(render(t, res), wantGolden) {
		t.Fatalf("recovered output diverges from serial rebuild (%d unique)", res.Hypergraph.NumUnique())
	}
	return s
}

// TestDurabilityRoundTrip: create → apply → close → resume must restore
// the engine exactly — zero replay, zero recomputation, byte-identical
// output — with every batch verified against a from-scratch rebuild
// along the way. Runs with fsync on (the default), exercising the
// durable path end to end.
func TestDurabilityRoundTrip(t *testing.T) {
	g, m := fixture(t)
	opts := core.Options{Seed: 3}
	walk := makeWalk(g, 5, 4)
	dir := filepath.Join(t.TempDir(), "sess")

	s, err := Create(dir, g.Clone(), m, opts, 0, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after Create")
	}
	if _, err := Create(dir, g.Clone(), m, opts, 0, Options{}); err == nil {
		t.Fatal("second Create on the same dir succeeded")
	}
	if _, err := s.Apply(context.Background(), nil); err != nil { // initial full build
		t.Fatal(err)
	}
	for i, ops := range walk.batches {
		res, err := s.Apply(context.Background(), ops)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !bytes.Equal(render(t, res), golden(t, walk.shadows[i+1], m, opts)) {
			t.Fatalf("batch %d: durable apply diverges from full rebuild", i)
		}
	}
	st := s.Stats()
	if st.WALRecords != 6 || st.WALBytes == 0 {
		t.Fatalf("wal stats = %+v, want 6 records", st)
	}
	if st.Snapshots == 0 {
		t.Fatal("no periodic snapshots at SnapshotEvery=2")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := s.Apply(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}

	final := golden(t, walk.shadows[len(walk.shadows)-1], m, opts)
	r := resumeAndCheck(t, dir, m, opts, Options{}, 6, OutcomeClean, final)
	if st := r.Stats(); st.Replayed != 0 {
		t.Fatalf("clean resume replayed %d records, want 0", st.Replayed)
	}
	// A clean resume restores the cache whole: the verification Apply in
	// resumeAndCheck recomputed nothing.
	if r.LastDirty() != 0 {
		t.Fatalf("clean resume recomputed %d components, want 0", r.LastDirty())
	}
	r.Close()
}

// crashFixture builds the shared fault-injection scene: a session with a
// snapshot at seq 2 (engine.snap, full cache) and a third batch in the
// active WAL segment — then "crashes" by copying the directory while the
// session is still open. Returns the live dir, the walk, and goldens for
// seq 0..3 (the walk is deterministic, so the goldens are computed once
// and shared across the fault tests).
var (
	crashGoldenOnce sync.Once
	crashGoldens    [][]byte
)

func crashFixture(t *testing.T) (dir string, walk *deltaWalk, m *core.Model, opts core.Options, goldens [][]byte) {
	t.Helper()
	g, m := fixture(t)
	opts = core.Options{Seed: 5}
	walk = makeWalk(g, 3, 4)
	dir = filepath.Join(t.TempDir(), "sess")
	s, err := Create(dir, g.Clone(), m, opts, 0, Options{NoFsync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range walk.batches[:2] {
		if _, err := s.Apply(context.Background(), ops); err != nil {
			t.Fatal(err)
		}
	}
	forceRotate(t, s) // engine.snap @ seq 2, wal-000002.log active
	if _, err := s.Apply(context.Background(), walk.batches[2]); err != nil {
		t.Fatal(err)
	}
	// Deliberately no Close: the copies below are the crash snapshots.
	crashGoldenOnce.Do(func() {
		for k := 0; k <= 3; k++ {
			crashGoldens = append(crashGoldens, golden(t, walk.shadows[k], m, opts))
		}
	})
	if len(crashGoldens) != 4 {
		t.Fatal("crash goldens unavailable (failed in an earlier test)")
	}
	return dir, walk, m, opts, crashGoldens
}

// TestDurabilityTornWriteMatrix truncates the active WAL segment at
// every byte offset of its tail record and asserts each recovery lands
// on exactly the acknowledged prefix, byte-identical to a serial rebuild
// — the torn record was never acked, so a cut anywhere inside it must
// recover seq 2, and only the full record recovers seq 3.
func TestDurabilityTornWriteMatrix(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	tail, err := os.ReadFile(filepath.Join(dir, "wal-000002.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) < walFrameHeader {
		t.Fatalf("tail segment too small: %d bytes", len(tail))
	}
	for cut := 0; cut <= len(tail); cut++ {
		crashed := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(crashed, "wal-000002.log"), tail[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantApplies, wantOutcome, wantBytes := 2, OutcomeTornTail, goldens[2]
		if cut == 0 || cut == len(tail) {
			wantOutcome = OutcomeClean // exact record boundary: nothing torn
		}
		if cut == len(tail) {
			wantApplies, wantBytes = 3, goldens[3]
		}
		s := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, wantApplies, wantOutcome, wantBytes)
		s.Close()
	}
}

// TestDurabilityWALBitFlipTail: a single corrupted byte inside the tail
// record reads as a torn append (the damage reaches EOF) and recovery
// drops exactly that record.
func TestDurabilityWALBitFlipTail(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "wal-000002.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walFrameHeader+4] ^= 0x20 // payload byte of the only (tail) record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, 2, OutcomeTornTail, goldens[2])
	s.Close()
}

// TestDurabilityWALBitFlipMidLog: corruption inside acknowledged history
// (a flipped byte in record 2 of 3, no snapshot coverage) must stop
// replay at the last verified record and report the loss — recovering an
// exact, older state rather than guessing.
func TestDurabilityWALBitFlipMidLog(t *testing.T) {
	g, m := fixture(t)
	opts := core.Options{Seed: 6}
	walk := makeWalk(g, 3, 4)
	dir := filepath.Join(t.TempDir(), "sess")
	s, err := Create(dir, g.Clone(), m, opts, 0, Options{NoFsync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range walk.batches {
		if _, err := s.Apply(context.Background(), ops); err != nil {
			t.Fatal(err)
		}
	}
	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "wal-000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find record 2's frame start by decoding record 1.
	recs, dmg := decodeWALStream(data)
	if dmg != walClean || len(recs) != 3 {
		t.Fatalf("setup: %d records, damage %v", len(recs), dmg)
	}
	off := len(encodeWALRecord(recs[0]))
	data[off+walFrameHeader+4] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, 1, OutcomeLostSuffix,
		golden(t, walk.shadows[1], m, opts))
	if st := r.Stats(); st.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1", st.Replayed)
	}
	r.Close()
}

// TestDurabilityMissingSnapshot: deleting engine.snap falls back to the
// seq-0 base snapshot and replays the whole WAL — same bytes, longer
// road.
func TestDurabilityMissingSnapshot(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	crashed := copyDir(t, dir)
	if err := os.Remove(filepath.Join(crashed, "engine.snap")); err != nil {
		t.Fatal(err)
	}
	r := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, 3, OutcomeClean, goldens[3])
	if st := r.Stats(); st.Replayed != 3 {
		t.Fatalf("replayed %d records, want 3", st.Replayed)
	}
	r.Close()
}

// TestDurabilitySnapshotVersionSkew: a snapshot from a different format
// version is rejected wholesale and recovery degrades to an older
// candidate instead of misparsing it.
func TestDurabilitySnapshotVersionSkew(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "engine.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(string(data), "mariohsnap 1\n", "mariohsnap 2\n", 1)
	if skewed == string(data) {
		t.Fatal("setup: header not found")
	}
	if err := os.WriteFile(path, []byte(skewed), 0o644); err != nil {
		t.Fatal(err)
	}
	s := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, 3, OutcomeSnapshotFallback, goldens[3])
	s.Close()
}

// TestDurabilitySnapshotGraphCorrupt: a flipped byte in the snapshot's
// graph section fails its CRC; recovery falls back past it and still
// reproduces the exact state.
func TestDurabilitySnapshotGraphCorrupt(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "engine.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("\ne "))
	if i < 0 {
		t.Fatal("setup: no edge line")
	}
	data[i+2] = 'q'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := resumeAndCheck(t, crashed, m, opts, Options{NoFsync: true}, 3, OutcomeSnapshotFallback, goldens[3])
	s.Close()
}

// TestDurabilitySnapshotCacheCorrupt: damage confined to the snapshot's
// cache section degrades to a graph-only restore — byte-identical
// output, every component recomputed.
func TestDurabilitySnapshotCacheCorrupt(t *testing.T) {
	dir, _, m, opts, goldens := crashFixture(t)
	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "engine.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("\nx "))
	if i < 0 {
		t.Fatal("setup: no cache edge line")
	}
	data[i+3] = 'q'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Resume(crashed, m, opts, 0, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Outcome; got != OutcomeCacheDropped {
		t.Fatalf("outcome = %q, want %q", got, OutcomeCacheDropped)
	}
	if got := s.Applies(); got != 3 {
		t.Fatalf("applies = %d, want 3", got)
	}
	res, err := s.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), goldens[3]) {
		t.Fatal("cache-dropped recovery diverges from serial rebuild")
	}
	if res.DirtyComponents == 0 || res.DirtyComponents != s.CachedComponents() {
		t.Fatalf("dropped cache should force a full recompute: dirty %d, cached %d",
			res.DirtyComponents, s.CachedComponents())
	}
	s.Close()
}

// TestDurabilityBrokenWALRefusesApplies: once an append fails, the
// session latches broken — no acknowledgement can outrun the log.
func TestDurabilityBrokenWALRefusesApplies(t *testing.T) {
	g, m := fixture(t)
	opts := core.Options{Seed: 2}
	dir := filepath.Join(t.TempDir(), "sess")
	s, err := Create(dir, g, m, opts, 0, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.wal.f.Close() // simulate the device yanking the handle
	s.mu.Unlock()
	if _, err := s.Apply(context.Background(), nil); !errors.Is(err, ErrStorage) {
		t.Fatalf("Apply on dead WAL = %v, want ErrStorage", err)
	}
	if _, err := s.Apply(context.Background(), nil); !errors.Is(err, ErrStorage) {
		t.Fatalf("broken session served an Apply: %v", err)
	}
}

// TestWALStreamDecode covers the framing layer directly: clean streams
// round-trip, truncation reads as torn, mid-stream damage reads as
// corrupt with the valid prefix preserved, and duplicate records decode.
func TestWALStreamDecode(t *testing.T) {
	recs := []walRecord{
		{seq: 1, fp: 0xdead, ops: []graph.DeltaOp{{Kind: graph.DeltaAdd, U: 0, V: 1, W: 2}}},
		{seq: 2, fp: 0xbeef, ops: []graph.DeltaOp{{Kind: graph.DeltaRemove, U: 0, V: 1}}},
		{seq: 2, fp: 0xbeef, ops: nil}, // duplicate seq: decodes, replay skips it
	}
	var stream []byte
	var bounds []int
	for _, r := range recs {
		stream = append(stream, encodeWALRecord(r)...)
		bounds = append(bounds, len(stream))
	}

	got, dmg := decodeWALStream(stream)
	if dmg != walClean || len(got) != 3 {
		t.Fatalf("clean stream: %d records, damage %v", len(got), dmg)
	}
	for i := range recs {
		if got[i].seq != recs[i].seq || got[i].fp != recs[i].fp || len(got[i].ops) != len(recs[i].ops) {
			t.Fatalf("record %d round-trip mismatch: %+v", i, got[i])
		}
	}

	got, dmg = decodeWALStream(stream[:bounds[1]+3]) // torn third record
	if dmg != walTorn || len(got) != 2 {
		t.Fatalf("torn stream: %d records, damage %v", len(got), dmg)
	}

	corrupted := append([]byte(nil), stream...)
	corrupted[bounds[0]+walFrameHeader+1] ^= 0xff // damage record 2, record 3 follows
	got, dmg = decodeWALStream(corrupted)
	if dmg != walCorrupt || len(got) != 1 {
		t.Fatalf("corrupt stream: %d records, damage %v", len(got), dmg)
	}

	if got, dmg := decodeWALStream(nil); dmg != walClean || len(got) != 0 {
		t.Fatalf("empty stream: %d records, damage %v", len(got), dmg)
	}
}

// TestDurabilityConcurrentReads: Stats/Applies/Graph race an in-flight
// Apply without tripping the race detector.
func TestDurabilityConcurrentReads(t *testing.T) {
	g, m := fixture(t)
	dir := filepath.Join(t.TempDir(), "sess")
	s, err := Create(dir, g, m, core.Options{Seed: 1}, 0, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Stats()
			s.Applies()
			s.CachedComponents()
		}
	}()
	if _, err := s.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	<-done
}
