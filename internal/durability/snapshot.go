package durability

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/incremental"
)

const (
	snapMagic   = "mariohsnap"
	snapVersion = 1
)

// ErrStorage marks durability failures caused by the backing store (disk
// full, permissions, I/O) rather than the caller; the server maps it to
// HTTP 500. Recoverable corruption is handled internally and never
// surfaces as an error.
var ErrStorage = errors.New("durability: storage")

// WriteFileAtomic writes path through a temp file in the same directory
// followed by an atomic rename (the model registry's pattern), so readers
// never observe a half-written file. With fsync set, the data and the
// directory entry are forced to disk before returning, making the swap
// survive power loss.
func WriteFileAtomic(path string, fsync bool, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if fsync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	return nil
}

// A snapshot is a line-oriented text file in two checksummed sections:
//
//	mariohsnap 1
//	state <applies> <fp 16-hex>      ─┐ graph section
//	graph <numNodes> <numEdges>       │
//	e <u> <v> <w>        × numEdges   │
//	crc <8-hex>                      ─┘
//	comps <count>                    ─┐ cache section
//	c <key> <fp 16-hex>  × count      │
//	cache <count>                     │
//	h <fp 16-hex> <filtered> <lines>  │ per cached component result
//	x <mult> <node>...   × lines      │
//	crc <8-hex>                      ─┘
//
// Each crc line is the CRC-32C of every preceding line of its section
// (including trailing newlines), computed incrementally during both
// writing and parsing. The two sections fail independently: a corrupt
// cache section with an intact graph section degrades to a graph-only
// restore (caches rebuild on the next Apply), while a corrupt graph
// section fails the whole snapshot and recovery falls back to an older
// one.

// crcLiner writes lines while hashing exactly the bytes emitted, so the
// section checksum needs no offset bookkeeping.
type crcLiner struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func (cl *crcLiner) line(format string, args ...any) {
	if cl.err != nil {
		return
	}
	s := fmt.Sprintf(format, args...) + "\n"
	cl.crc = crc32.Update(cl.crc, castagnoli, []byte(s))
	_, cl.err = cl.w.WriteString(s)
}

// crcLine closes the current section: the checksum line itself is not
// part of any checksum, and the accumulator resets for the next section.
func (cl *crcLiner) crcLine() {
	if cl.err != nil {
		return
	}
	_, cl.err = fmt.Fprintf(cl.w, "crc %08x\n", cl.crc)
	cl.crc = 0
}

// writeSnapshot serializes an engine state with its whole-graph
// fingerprint.
func writeSnapshot(w io.Writer, st *incremental.EngineState, fp uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", snapMagic, snapVersion); err != nil {
		return err
	}
	cl := &crcLiner{w: bw}
	cl.line("state %d %016x", st.Applies, fp)
	edges := st.Graph.Edges()
	cl.line("graph %d %d", st.Graph.NumNodes(), len(edges))
	for _, e := range edges {
		cl.line("e %d %d %d", e.U, e.V, e.W)
	}
	cl.crcLine()
	cl.line("comps %d", len(st.Comps))
	for _, c := range st.Comps {
		cl.line("c %d %016x", c.Key, c.FP)
	}
	cl.line("cache %d", len(st.Entries))
	for _, en := range st.Entries {
		lines := entryLines(en.Rec)
		cl.line("h %016x %d %d", en.FP, en.Filtered, len(lines))
		for _, l := range lines {
			cl.line("x %s", l)
		}
	}
	cl.crcLine()
	if cl.err != nil {
		return cl.err
	}
	return bw.Flush()
}

// entryLines renders one cached hypergraph as "mult node node..." lines,
// sorted by node set for a canonical encoding. The hypergraph's own node
// count is not stored: cached results merge through AddMult, which only
// reads the edges.
func entryLines(rec *hypergraph.Hypergraph) []string {
	type em struct {
		nodes []int
		mult  int
	}
	edges := make([]em, 0, rec.NumUnique())
	rec.Each(func(nodes []int, mult int) {
		edges = append(edges, em{nodes: nodes, mult: mult})
	})
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i].nodes, edges[j].nodes
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	out := make([]string, len(edges))
	for i, e := range edges {
		var sb strings.Builder
		sb.WriteString(strconv.Itoa(e.mult))
		for _, u := range e.nodes {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(u))
		}
		out[i] = sb.String()
	}
	return out
}

// snapScanner reads lines while mirroring the writer's checksum.
type snapScanner struct {
	sc     *bufio.Scanner
	crc    uint32
	lineNo int
}

// next returns the next line, folding it into the running section
// checksum (with the newline the writer emitted and the scanner strips).
func (r *snapScanner) next() (string, bool) {
	line, ok := r.raw()
	if ok {
		r.crc = crc32.Update(r.crc, castagnoli, []byte(line))
		r.crc = crc32.Update(r.crc, castagnoli, []byte{'\n'})
	}
	return line, ok
}

// raw returns the next line without hashing it (header and crc lines).
func (r *snapScanner) raw() (string, bool) {
	if !r.sc.Scan() {
		return "", false
	}
	r.lineNo++
	return r.sc.Text(), true
}

// checkCRC consumes a "crc" line, compares it against the accumulated
// section checksum, and resets the accumulator.
func (r *snapScanner) checkCRC() error {
	line, ok := r.raw()
	if !ok {
		return fmt.Errorf("line %d: missing crc line", r.lineNo+1)
	}
	f := strings.Fields(line)
	if len(f) != 2 || f[0] != "crc" {
		return fmt.Errorf("line %d: want crc line, got %q", r.lineNo, line)
	}
	want, err := strconv.ParseUint(f[1], 16, 32)
	if err != nil {
		return fmt.Errorf("line %d: bad crc %q", r.lineNo, f[1])
	}
	if uint32(want) != r.crc {
		return fmt.Errorf("line %d: section crc mismatch", r.lineNo)
	}
	r.crc = 0
	return nil
}

// fields splits a hashed line and checks its tag and arity.
func (r *snapScanner) fields(tag string, n int) ([]string, error) {
	line, ok := r.next()
	if !ok {
		return nil, fmt.Errorf("line %d: unexpected end of snapshot (want %q)", r.lineNo+1, tag)
	}
	f := strings.Fields(line)
	if len(f) != n || f[0] != tag {
		return nil, fmt.Errorf("line %d: want %q line with %d fields, got %q", r.lineNo, tag, n, line)
	}
	return f, nil
}

func parseInt(s string) (int, error)   { return strconv.Atoi(s) }
func parseFP(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad count %q", s)
	}
	return n, nil
}

// readSnapshot parses a snapshot. On success it returns the restorable
// state and the recorded whole-graph fingerprint. cacheDropped reports
// that the cache section was damaged and only the graph section was
// restored (Comps and Entries empty — correct, just slower). An error
// means the snapshot is unusable.
func readSnapshot(rd io.Reader) (st *incremental.EngineState, fp uint64, cacheDropped bool, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	r := &snapScanner{sc: sc}

	line, ok := r.raw()
	if !ok {
		return nil, 0, false, errors.New("durability: snapshot: empty file")
	}
	if line != fmt.Sprintf("%s %d", snapMagic, snapVersion) {
		return nil, 0, false, fmt.Errorf("durability: snapshot: unsupported header %q", line)
	}

	st, fp, err = readGraphSection(r)
	if err != nil {
		return nil, 0, false, fmt.Errorf("durability: snapshot: %v", err)
	}
	if err := readCacheSection(r, st); err != nil {
		st.Comps, st.Entries = nil, nil
		return st, fp, true, nil
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, false, fmt.Errorf("durability: snapshot: %v", serr)
	}
	return st, fp, false, nil
}

func readGraphSection(r *snapScanner) (*incremental.EngineState, uint64, error) {
	f, err := r.fields("state", 3)
	if err != nil {
		return nil, 0, err
	}
	applies, err := parseInt(f[1])
	if err != nil || applies < 0 {
		return nil, 0, fmt.Errorf("line %d: bad applies %q", r.lineNo, f[1])
	}
	fp, err := parseFP(f[2])
	if err != nil || len(f[2]) != 16 {
		return nil, 0, fmt.Errorf("line %d: bad fingerprint %q", r.lineNo, f[2])
	}
	f, err = r.fields("graph", 3)
	if err != nil {
		return nil, 0, err
	}
	numNodes, err1 := parseCount(f[1])
	numEdges, err2 := parseCount(f[2])
	if err1 != nil || err2 != nil {
		return nil, 0, fmt.Errorf("line %d: bad graph header", r.lineNo)
	}
	g := graph.New(numNodes)
	for i := 0; i < numEdges; i++ {
		ef, err := r.fields("e", 4)
		if err != nil {
			return nil, 0, err
		}
		u, err1 := parseInt(ef[1])
		v, err2 := parseInt(ef[2])
		w, err3 := parseInt(ef[3])
		if err1 != nil || err2 != nil || err3 != nil ||
			u < 0 || v < 0 || u == v || u >= numNodes || v >= numNodes || w <= 0 {
			return nil, 0, fmt.Errorf("line %d: bad edge", r.lineNo)
		}
		g.AddWeight(u, v, w)
	}
	if err := r.checkCRC(); err != nil {
		return nil, 0, err
	}
	return &incremental.EngineState{Graph: g, Applies: applies}, fp, nil
}

func readCacheSection(r *snapScanner, st *incremental.EngineState) error {
	f, err := r.fields("comps", 2)
	if err != nil {
		return err
	}
	nComps, err := parseCount(f[1])
	if err != nil {
		return fmt.Errorf("line %d: %v", r.lineNo, err)
	}
	for i := 0; i < nComps; i++ {
		cf, err := r.fields("c", 3)
		if err != nil {
			return err
		}
		key, err1 := parseInt(cf[1])
		cfp, err2 := parseFP(cf[2])
		if err1 != nil || err2 != nil || key < 0 {
			return fmt.Errorf("line %d: bad comp line", r.lineNo)
		}
		st.Comps = append(st.Comps, incremental.CompFP{Key: key, FP: cfp})
	}
	f, err = r.fields("cache", 2)
	if err != nil {
		return err
	}
	nEntries, err := parseCount(f[1])
	if err != nil {
		return fmt.Errorf("line %d: %v", r.lineNo, err)
	}
	for i := 0; i < nEntries; i++ {
		hf, err := r.fields("h", 4)
		if err != nil {
			return err
		}
		efp, err1 := parseFP(hf[1])
		filtered, err2 := parseInt(hf[2])
		nLines, err3 := parseCount(hf[3])
		if err1 != nil || err2 != nil || err3 != nil || filtered < 0 {
			return fmt.Errorf("line %d: bad cache entry header", r.lineNo)
		}
		rec := hypergraph.New(0)
		for j := 0; j < nLines; j++ {
			xl, ok := r.next()
			if !ok {
				return fmt.Errorf("line %d: unexpected end of cache entry", r.lineNo+1)
			}
			xf := strings.Fields(xl)
			if len(xf) < 3 || xf[0] != "x" {
				return fmt.Errorf("line %d: bad cache edge line", r.lineNo)
			}
			mult, err := parseInt(xf[1])
			if err != nil || mult <= 0 {
				return fmt.Errorf("line %d: bad multiplicity", r.lineNo)
			}
			nodes := make([]int, len(xf)-2)
			for k, s := range xf[2:] {
				u, err := parseInt(s)
				if err != nil || u < 0 {
					return fmt.Errorf("line %d: bad node id", r.lineNo)
				}
				nodes[k] = u
			}
			rec.AddMult(nodes, mult)
		}
		st.Entries = append(st.Entries, incremental.CacheEntry{FP: efp, Filtered: filtered, Rec: rec})
	}
	return r.checkCRC()
}

// readSnapshotFile opens and parses one snapshot file.
func readSnapshotFile(path string) (*incremental.EngineState, uint64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	return readSnapshot(f)
}
