package durability

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"marioh/internal/core"
	"marioh/internal/graph"
	"marioh/internal/incremental"
)

// ErrClosed is returned by operations on a closed session.
var ErrClosed = errors.New("durability: session closed")

// Directory layout of one durable session:
//
//	base.snap        seq-0 snapshot written once at Create (last-resort
//	                 recovery candidate; doubles as the existence marker)
//	engine.snap      newest periodic snapshot
//	engine.snap.prev previous snapshot, kept one generation
//	wal-000001.log   WAL segments; the highest index was active. Segments
//	                 are never appended to again after a restart and never
//	                 deleted, so replay can always restart from base.snap.
const (
	baseSnapName = "base.snap"
	snapName     = "engine.snap"
	snapPrevName = "engine.snap.prev"
	walPrefix    = "wal-"
	walSuffix    = ".log"
)

// Recovery outcomes, ordered by increasing severity. A resumed session
// reports the most severe condition it observed.
const (
	// OutcomeClean: newest snapshot loaded, every WAL record replayed and
	// fingerprint-verified.
	OutcomeClean = "clean"
	// OutcomeTornTail: the active segment ended in a partial record — the
	// expected artifact of a crash mid-append. The batch was never
	// acknowledged; nothing is lost.
	OutcomeTornTail = "torn-tail"
	// OutcomeCacheDropped: the snapshot's cache section was damaged; the
	// graph restored exactly but cached component results rebuild on the
	// next Apply.
	OutcomeCacheDropped = "cache-dropped"
	// OutcomeSnapshotFallback: the newest snapshot was unusable and an
	// older candidate (engine.snap.prev or base.snap) recovered the
	// session, with a correspondingly longer replay.
	OutcomeSnapshotFallback = "snapshot-fallback"
	// OutcomeLostSuffix: acknowledged batches could not be replayed (WAL
	// damage beyond the last recoverable record). The session resumes at
	// the last verified state; its apply counter tells callers which
	// batches are reflected.
	OutcomeLostSuffix = "lost-suffix"
)

const defaultSnapshotEvery = 8

// Options configures a durable session directory.
type Options struct {
	// NoFsync skips fsync on WAL appends and snapshot renames. Appends
	// still reach the kernel before an apply is acknowledged (surviving a
	// process kill), but not necessarily the disk (power loss may drop
	// acknowledged batches).
	NoFsync bool
	// SnapshotEvery is the number of applies between periodic snapshots;
	// 0 means the default (8), negative disables periodic snapshots
	// (Close and Resume still write one).
	SnapshotEvery int
	// Logf receives recovery and degradation notices; nil discards them.
	Logf func(format string, args ...any)
}

// Stats reports the durability counters of one session.
type Stats struct {
	WALRecords int64  // records appended by this process
	WALBytes   int64  // framed bytes appended by this process
	Snapshots  int64  // snapshots written by this process
	Replayed   int    // WAL records replayed by the last Resume
	Outcome    string // recovery outcome of the last Resume ("" for Create)
}

// Session wraps an incremental.Engine with a write-ahead log and periodic
// snapshots under one directory. Every Apply appends the batch (and the
// post-apply graph fingerprint) to the WAL before reconstructing, so a
// crash at any point loses at most the one batch that was never
// acknowledged.
type Session struct {
	dir       string
	fsync     bool
	snapEvery int
	logf      func(string, ...any)

	mu          sync.Mutex
	eng         *incremental.Engine // guarded by mu
	wal         *walWriter          // guarded by mu
	walSeg      int                 // guarded by mu; active segment index
	lastSnapSeq uint64              // guarded by mu; applies covered by engine.snap
	walRecords  int64               // guarded by mu
	walBytes    int64               // guarded by mu
	snapshots   int64               // guarded by mu
	replayed    int                 // guarded by mu; set once at Resume
	outcome     string              // guarded by mu; set once at Resume
	broken      error               // guarded by mu; latched storage failure
	closed      bool                // guarded by mu
}

func newSession(dir string, o Options) *Session {
	every := o.SnapshotEvery
	if every == 0 {
		every = defaultSnapshotEvery
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Session{dir: dir, fsync: !o.NoFsync, snapEvery: every, logf: logf}
}

func (s *Session) segPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", walPrefix, i, walSuffix))
}

// Exists reports whether dir holds a durable session (its base snapshot
// is the existence marker, written last during Create).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, baseSnapName))
	return err == nil
}

// Create initializes a durable session in dir (created if needed, must
// not already hold one) over g. Like incremental.New it takes ownership
// of g. The seq-0 base snapshot is written before Create returns, so the
// session is recoverable from its first moment.
func Create(dir string, g *graph.Graph, m *core.Model, opts core.Options, workers int, o Options) (*Session, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: session dir: %v", ErrStorage, err)
	}
	if Exists(dir) {
		return nil, fmt.Errorf("durability: session dir %s already initialized (use Resume)", dir)
	}
	s := newSession(dir, o)
	s.eng = incremental.New(g, m, opts, workers)
	st := s.eng.State()
	fp := s.eng.Fingerprint()
	base := filepath.Join(dir, baseSnapName)
	if err := WriteFileAtomic(base, s.fsync, func(w io.Writer) error {
		return writeSnapshot(w, st, fp)
	}); err != nil {
		return nil, err
	}
	wal, err := openWAL(s.segPath(1), s.fsync)
	if err != nil {
		return nil, err
	}
	s.wal, s.walSeg = wal, 1
	if s.fsync {
		if err := syncDir(dir); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// Resume recovers the durable session in dir: it loads the newest valid
// snapshot, replays the WAL tail through the engine verifying the
// recorded fingerprint after every record, and classifies what it found
// (see the Outcome constants). Damage degrades along the candidate chain
// engine.snap → engine.snap.prev → base.snap; only when no candidate
// replays to matching fingerprints does Resume fail. A successful Resume
// writes a fresh snapshot and starts a new WAL segment, so the next
// recovery replays nothing.
func Resume(dir string, m *core.Model, opts core.Options, workers int, o Options) (*Session, error) {
	if !Exists(dir) {
		return nil, fmt.Errorf("durability: no session in %s", dir)
	}
	s := newSession(dir, o)

	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	var all []walRecord
	perSegCount := make([]int, len(segs))
	damaged := make([]bool, len(segs)) // damage that may hide acknowledged records
	tornTail := false
	for i, seg := range segs {
		recs, dmg, err := readWALSegment(s.segPath(seg))
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
		perSegCount[i] = len(recs)
		switch {
		case dmg == walClean:
		case i == len(segs)-1 && dmg == walTorn:
			tornTail = true
		default:
			damaged[i] = true
		}
	}
	var maxSeen uint64
	for _, rec := range all {
		if rec.seq > maxSeen {
			maxSeen = rec.seq
		}
	}

	// Candidate chain, newest first. base.snap always exists (Exists
	// passed), so the chain is never empty.
	var cands []string
	for _, name := range []string{snapName, snapPrevName, baseSnapName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			cands = append(cands, name)
		}
	}
	var (
		eng          *incremental.Engine
		replayed     int
		cacheDropped bool
		fellBack     bool
		lastErr      error
	)
	for i, name := range cands {
		st, fp0, dropped, err := readSnapshotFile(filepath.Join(dir, name))
		if err != nil {
			lastErr = fmt.Errorf("%s: %v", name, err)
			s.logf("durability: %s unusable: %v", name, err)
			continue
		}
		e := incremental.Restore(st, m, opts, workers)
		if got := e.Fingerprint(); got != fp0 {
			lastErr = fmt.Errorf("%s: graph fingerprint mismatch (got %016x want %016x)", name, got, fp0)
			s.logf("durability: %s unusable: fingerprint mismatch", name)
			continue
		}
		n, ok := replayChain(e, all, uint64(st.Applies))
		if !ok {
			lastErr = fmt.Errorf("%s: wal replay diverged from recorded fingerprints", name)
			s.logf("durability: %s unusable: replay fingerprint mismatch", name)
			continue
		}
		eng, replayed, cacheDropped, fellBack = e, n, dropped, i > 0
		break
	}
	if eng == nil {
		return nil, fmt.Errorf("durability: unrecoverable session in %s: %v", dir, lastErr)
	}

	// Loss accounting. Replay is chain-contiguous, so reaching maxSeen
	// proves every decoded record newer than the snapshot was applied —
	// and any record hidden by mid-log damage must predate the snapshot.
	// The one blind spot: damage with no decoded record anywhere after it
	// may hide batches newer than everything recovered.
	lost := uint64(eng.Applies()) < maxSeen
	for i := range segs {
		if !damaged[i] {
			continue
		}
		decodedAfter := false
		for j := i + 1; j < len(segs); j++ {
			if perSegCount[j] > 0 {
				decodedAfter = true
				break
			}
		}
		if !decodedAfter {
			lost = true
		}
	}

	outcome := OutcomeClean
	switch {
	case lost:
		outcome = OutcomeLostSuffix
	case fellBack:
		outcome = OutcomeSnapshotFallback
	case cacheDropped:
		outcome = OutcomeCacheDropped
	case tornTail:
		outcome = OutcomeTornTail
	}
	if outcome != OutcomeClean {
		s.logf("durability: recovered %s at seq %d (replayed %d records): %s", dir, eng.Applies(), replayed, outcome)
	}

	s.eng = eng
	s.replayed = replayed
	s.outcome = outcome
	lastSeg := 0
	if len(segs) > 0 {
		lastSeg = segs[len(segs)-1]
	}
	s.walSeg = lastSeg + 1 // never append to a possibly-damaged segment
	s.wal, err = openWAL(s.segPath(s.walSeg), s.fsync)
	if err != nil {
		return nil, err
	}
	// Heal: a fresh snapshot at the recovered state bounds the next
	// recovery's replay (and replaces a damaged engine.snap). Failure is
	// not fatal — the WAL chain above remains sufficient.
	if err := s.writeSnapshotLocked(); err != nil {
		s.logf("durability: post-recovery snapshot failed: %v", err)
	}
	if s.fsync {
		if err := syncDir(dir); err != nil {
			s.wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// listSegments returns the WAL segment indices present in dir, ascending.
func (s *Session) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("%w: session dir: %v", ErrStorage, err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix))
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// replayChain replays WAL records into an engine restored at sequence
// from, accepting records in exact sequence order: already-covered
// sequence numbers are skipped, a gap ends the chain (nothing past it can
// be trusted to apply to the right state). After each accepted record the
// engine's whole-graph fingerprint must equal the one recorded at append
// time; a mismatch proves the candidate and the log disagree and fails
// the candidate. Returns the number of records applied.
func replayChain(e *incremental.Engine, recs []walRecord, from uint64) (int, bool) {
	next := from + 1
	applied := 0
	for _, rec := range recs {
		if rec.seq < next {
			continue
		}
		if rec.seq > next {
			break
		}
		e.Mutate(rec.ops)
		if e.Fingerprint() != rec.fp {
			return applied, false
		}
		e.SetApplies(int(rec.seq))
		applied++
		next++
	}
	return applied, true
}

// Apply durably applies one delta batch: the graph is mutated, the batch
// and the post-mutation fingerprint are appended (and fsync'd, unless
// disabled) to the WAL, and only then does the engine reconstruct — so
// by the time the result is returned the batch is recoverable. Mirrors
// incremental.Engine.Apply semantics: on reconstruction error or
// cancellation the mutation has landed (and is logged) and a retry with
// an empty batch resumes where it stopped.
func (s *Session) Apply(ctx context.Context, ops []graph.DeltaOp) (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.broken != nil {
		return nil, s.broken
	}

	func() {
		defer func() {
			if p := recover(); p != nil {
				// A panic mid-mutation (e.g. a weight overflow deep in a
				// graph primitive) leaves the in-memory graph ahead of the
				// log; any record appended after it could never replay to
				// a matching fingerprint, so latch broken instead of
				// poisoning the log.
				s.broken = fmt.Errorf("%w: mutation panic: %v", ErrStorage, p)
				panic(p)
			}
		}()
		s.eng.Mutate(ops)
	}()
	fp := s.eng.Fingerprint()
	seq := uint64(s.eng.Applies() + 1)
	n, err := s.wal.Append(walRecord{seq: seq, fp: fp, ops: ops})
	if err != nil {
		s.broken = err
		return nil, err
	}
	s.walRecords++
	s.walBytes += int64(n)

	res, rerr := s.eng.Apply(ctx, nil)

	if rerr == nil && s.snapEvery > 0 && seq-s.lastSnapSeq >= uint64(s.snapEvery) {
		if err := s.rotateLocked(); err != nil {
			// Snapshot failure loses nothing (the WAL has every batch);
			// log and keep serving unless the WAL itself became unusable.
			s.logf("durability: snapshot rotation failed: %v", err)
		}
	}
	return res, rerr
}

// writeSnapshotLocked writes engine.snap at the engine's current state,
// preserving the previous snapshot as engine.snap.prev. Callers hold mu
// (or have exclusive access during Create/Resume).
func (s *Session) writeSnapshotLocked() error {
	st := s.eng.State()
	fp := s.eng.Fingerprint()
	snap := filepath.Join(s.dir, snapName)
	if _, err := os.Stat(snap); err == nil {
		if err := os.Rename(snap, filepath.Join(s.dir, snapPrevName)); err != nil {
			return fmt.Errorf("%w: rotate snapshot: %v", ErrStorage, err)
		}
	}
	if err := WriteFileAtomic(snap, s.fsync, func(w io.Writer) error {
		return writeSnapshot(w, st, fp)
	}); err != nil {
		return err
	}
	s.lastSnapSeq = uint64(s.eng.Applies())
	s.snapshots++
	return nil
}

// rotateLocked snapshots the engine and starts a fresh WAL segment.
func (s *Session) rotateLocked() error {
	if err := s.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		s.broken = err // the active segment is in an unknown state
		return err
	}
	s.walSeg++
	w, err := openWAL(s.segPath(s.walSeg), s.fsync)
	if err != nil {
		s.broken = err
		return err
	}
	s.wal = w
	if s.fsync {
		return syncDir(s.dir)
	}
	return nil
}

// Graph returns the session's live graph; callers must not mutate it.
func (s *Session) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Graph()
}

// Applies returns the engine's apply counter (the WAL sequence number of
// the newest acknowledged batch).
func (s *Session) Applies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Applies()
}

// LastDirty returns the number of components the most recent Apply
// recomputed.
func (s *Session) LastDirty() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.LastDirty()
}

// CachedComponents returns the number of cached per-component results.
func (s *Session) CachedComponents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.CachedComponents()
}

// Stats returns the session's durability counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALRecords: s.walRecords,
		WALBytes:   s.walBytes,
		Snapshots:  s.snapshots,
		Replayed:   s.replayed,
		Outcome:    s.outcome,
	}
}

// Sync forces the active WAL segment to disk, regardless of NoFsync.
func (s *Session) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.broken != nil {
		return s.broken
	}
	return s.wal.Sync()
}

// Close writes a final snapshot (bounding the next Resume's replay to
// zero) and closes the WAL. Safe to call twice; a broken session skips
// the snapshot but still releases the file handle.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if s.broken == nil {
		if err := s.writeSnapshotLocked(); err != nil {
			firstErr = err
			s.logf("durability: final snapshot failed: %v", err)
		}
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
