package durability

import (
	"math"
	"testing"

	"marioh/internal/graph"
)

// recsEqual compares two decoded record slices field by field.
func recsEqual(a, b []walRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].seq != b[i].seq || a[i].fp != b[i].fp || len(a[i].ops) != len(b[i].ops) {
			return false
		}
		for j := range a[i].ops {
			if a[i].ops[j] != b[i].ops[j] {
				return false
			}
		}
	}
	return true
}

// fuzzSeedStream builds a small valid WAL stream for the fuzz corpus.
func fuzzSeedStream(dup bool) []byte {
	recs := []walRecord{
		{seq: 1, fp: 0x0102030405060708, ops: []graph.DeltaOp{
			{Kind: graph.DeltaAdd, U: 0, V: 1, W: 2},
			{Kind: graph.DeltaSet, U: 1, V: 2, W: 3},
		}},
		{seq: 2, fp: 0x1112131415161718, ops: []graph.DeltaOp{
			{Kind: graph.DeltaRemove, U: 0, V: 1},
		}},
		{seq: 3, fp: 0x2122232425262728, ops: nil},
	}
	var out []byte
	for _, r := range recs {
		out = append(out, encodeWALRecord(r)...)
		if dup {
			out = append(out, encodeWALRecord(r)...)
		}
	}
	return out
}

// FuzzWALReplay feeds arbitrary byte streams through WAL decoding and the
// chain-accept replay, with a plain weight-map shadow as the oracle for
// the graph mutations the replay performs. Properties:
//
//   - decoding never panics and never reports a record that does not
//     round-trip through the encoder byte-for-byte;
//   - chain-accepted records apply in exact sequence order;
//   - the replayed graph matches an op-by-op map of edge weights — the
//     engine-vs-map equivalence the recovery path rests on.
func FuzzWALReplay(f *testing.F) {
	f.Add(fuzzSeedStream(false))
	f.Add(fuzzSeedStream(true))
	f.Add(fuzzSeedStream(false)[:20]) // torn tail
	corrupt := fuzzSeedStream(false)
	corrupt[walFrameHeader+3] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, dmg := decodeWALStream(data)
		if dmg == walClean && len(recs) > 0 {
			// Decoded records must survive a re-encode/re-decode cycle
			// unchanged (byte equality is deliberately not required: the
			// delta text format tolerates cosmetic variation).
			var re []byte
			for _, r := range recs {
				re = append(re, encodeWALRecord(r)...)
			}
			recs2, dmg2 := decodeWALStream(re)
			if dmg2 != walClean || !recsEqual(recs, recs2) {
				t.Fatalf("records do not round-trip through the encoder (damage %v)", dmg2)
			}
		}

		// Replay the chain-accepted records through a Tracker (the
		// engine's mutation substrate) and through a plain weight map.
		const nodeCap = 1 << 12
		tracker := graph.NewTracker(graph.New(0))
		shadow := map[[2]int]int{}
		next := uint64(1)
		for _, rec := range recs {
			if rec.seq < next {
				continue
			}
			if rec.seq > next {
				break
			}
			for _, op := range rec.ops {
				if op.U >= nodeCap || op.V >= nodeCap {
					continue // bound memory; both sides skip identically
				}
				u, v := op.U, op.V
				if u > v {
					u, v = v, u
				}
				key := [2]int{u, v}
				if op.Kind == graph.DeltaAdd && shadow[key]+op.W > math.MaxInt32 {
					continue // sidestep the engine's cumulative-overflow panic
				}
				tracker.Apply(op)
				switch op.Kind {
				case graph.DeltaAdd:
					shadow[key] += op.W
				case graph.DeltaRemove:
					delete(shadow, key)
				case graph.DeltaSet:
					if op.W == 0 {
						delete(shadow, key)
					} else {
						shadow[key] = op.W
					}
				}
			}
			next++
		}

		g := tracker.Graph()
		edges := g.Edges()
		if len(edges) != len(shadow) {
			t.Fatalf("replayed graph has %d edges, shadow map has %d", len(edges), len(shadow))
		}
		for _, e := range edges {
			if shadow[[2]int{e.U, e.V}] != e.W {
				t.Fatalf("edge {%d,%d}: graph weight %d, shadow %d", e.U, e.V, e.W, shadow[[2]int{e.U, e.V}])
			}
		}
	})
}
