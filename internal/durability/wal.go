// Package durability persists incremental reconstruction sessions across
// process death: every applied delta batch is appended to a write-ahead
// log (length + CRC-32C framed records carrying the batch's DeltaOp text
// encoding and the post-apply graph fingerprint) before the apply is
// acknowledged, and the engine state (graph, per-component fingerprints,
// cached component results) is snapshotted periodically with the
// temp-file + atomic-rename pattern. Recovery loads the newest valid
// snapshot, replays the WAL tail through the engine and verifies every
// fingerprint along the way, so a recovered session's next Apply is
// byte-identical to an uninterrupted rebuild of the same delta stream —
// or it refuses with a reason, never a wrong answer.
package durability

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"

	"marioh/internal/graph"
)

// castagnoli is the CRC-32C table shared by WAL framing and snapshot
// section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// walFrameHeader is the fixed frame prefix: uint32 LE payload length,
	// uint32 LE CRC-32C of the payload.
	walFrameHeader = 8
	// maxWALPayload bounds a single record so a corrupt length field can
	// never drive a multi-gigabyte allocation.
	maxWALPayload = 64 << 20
)

// walRecord is one acknowledged delta batch: the sequence number the
// apply was assigned (the engine's apply counter), the batch's ops, and
// the whole-graph fingerprint immediately after mutating — the value
// recovery verifies against after replaying the record.
type walRecord struct {
	seq uint64
	fp  uint64
	ops []graph.DeltaOp
}

// encodeWALRecord frames one record: a "batch <seq> <fp>" header line
// followed by the ops in the graph delta text format, wrapped in the
// length+CRC frame.
func encodeWALRecord(rec walRecord) []byte {
	var payload bytes.Buffer
	fmt.Fprintf(&payload, "batch %d %016x\n", rec.seq, rec.fp)
	// bytes.Buffer writes cannot fail.
	_ = graph.WriteDeltas(&payload, rec.ops)
	frame := make([]byte, walFrameHeader+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload.Bytes(), castagnoli))
	copy(frame[walFrameHeader:], payload.Bytes())
	return frame
}

// decodeWALPayload parses a CRC-verified payload back into a record.
func decodeWALPayload(payload []byte) (walRecord, error) {
	nl := bytes.IndexByte(payload, '\n')
	if nl < 0 {
		return walRecord{}, errors.New("durability: wal record: missing batch header")
	}
	f := strings.Fields(string(payload[:nl]))
	if len(f) != 3 || f[0] != "batch" {
		return walRecord{}, fmt.Errorf("durability: wal record: bad batch header %q", string(payload[:nl]))
	}
	seq, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return walRecord{}, fmt.Errorf("durability: wal record: bad seq %q", f[1])
	}
	fp, err := strconv.ParseUint(f[2], 16, 64)
	if err != nil || len(f[2]) != 16 {
		return walRecord{}, fmt.Errorf("durability: wal record: bad fingerprint %q", f[2])
	}
	ops, err := graph.ReadDeltas(bytes.NewReader(payload[nl+1:]))
	if err != nil {
		return walRecord{}, fmt.Errorf("durability: wal record: %v", err)
	}
	return walRecord{seq: seq, fp: fp, ops: ops}, nil
}

// walDamage classifies how a WAL segment's byte stream ended.
type walDamage int

const (
	// walClean: the segment decoded fully.
	walClean walDamage = iota
	// walTorn: the invalid region extends to end of file — the expected
	// artifact of a crash mid-append. The partial record was never
	// acknowledged (appends fsync before the apply returns), so ignoring
	// it loses nothing.
	walTorn
	// walCorrupt: an invalid record with more bytes after it — not a torn
	// append but damage inside previously-acknowledged history. Only the
	// prefix before the damage is usable.
	walCorrupt
)

func (d walDamage) String() string {
	switch d {
	case walClean:
		return "clean"
	case walTorn:
		return "torn"
	default:
		return "corrupt"
	}
}

// decodeWALStream walks a segment's bytes and returns every record of the
// longest valid prefix, plus how the stream ended. The torn/corrupt
// distinction is positional: damage that reaches EOF is a crash artifact
// (torn), damage followed by more bytes means acknowledged history was
// corrupted in place.
func decodeWALStream(data []byte) ([]walRecord, walDamage) {
	var recs []walRecord
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < walFrameHeader {
			return recs, walTorn
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > rest-walFrameHeader {
			// The record claims bytes past EOF: a torn append (or a
			// garbage length field whose damage also reaches EOF).
			return recs, walTorn
		}
		if length > maxWALPayload {
			return recs, walCorrupt
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+length]
		rec, err := walRecord{}, error(nil)
		if crc32.Checksum(payload, castagnoli) == crc {
			rec, err = decodeWALPayload(payload)
		} else {
			err = errors.New("crc mismatch")
		}
		if err != nil {
			if off+walFrameHeader+length == len(data) {
				return recs, walTorn
			}
			return recs, walCorrupt
		}
		recs = append(recs, rec)
		off += walFrameHeader + length
	}
	return recs, walClean
}

// readWALSegment loads one segment file. A missing file reads as an empty
// clean segment; only real I/O failures surface as errors.
func readWALSegment(path string) ([]walRecord, walDamage, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, walClean, nil
	}
	if err != nil {
		return nil, walClean, fmt.Errorf("%w: read wal %s: %v", ErrStorage, path, err)
	}
	recs, dmg := decodeWALStream(data)
	return recs, dmg, nil
}

// walWriter appends framed records to an open WAL segment.
type walWriter struct {
	f     *os.File
	fsync bool
}

// openWAL opens (creating if needed) a segment for appending.
func openWAL(path string, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open wal %s: %v", ErrStorage, path, err)
	}
	return &walWriter{f: f, fsync: fsync}, nil
}

// Append frames, writes and (unless fsync is off) syncs one record,
// returning the framed size. The record is as durable as the writer's
// fsync mode allows when Append returns; callers must not acknowledge
// the batch if it errors.
func (w *walWriter) Append(rec walRecord) (int, error) {
	frame := encodeWALRecord(rec)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("%w: wal append: %v", ErrStorage, err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("%w: wal fsync: %v", ErrStorage, err)
		}
	}
	return len(frame), nil
}

// Sync forces the segment to disk regardless of the fsync mode.
func (w *walWriter) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("%w: wal fsync: %v", ErrStorage, err)
	}
	return nil
}

// Close syncs and closes the segment.
func (w *walWriter) Close() error {
	serr := w.f.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return fmt.Errorf("%w: wal close: %v", ErrStorage, serr)
	}
	if cerr != nil {
		return fmt.Errorf("%w: wal close: %v", ErrStorage, cerr)
	}
	return nil
}
