package baselines

import (
	"sort"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Demon is the local-first overlapping community detection baseline of
// Coscia et al. (KDD 2012). For every node u, label propagation is run on
// the ego-minus-ego network of u; each resulting local community (plus u)
// is merged into the global community pool, where a community is absorbed
// by an existing one when at least Epsilon of its nodes are already
// contained (ε = 1 — the paper's setting — absorbs only fully-contained
// communities). Every remaining community of at least MinSize nodes
// becomes one hyperedge.
type Demon struct {
	// Epsilon is the containment fraction required to merge; default 1.
	Epsilon float64
	// MinSize is the minimum community size kept; default 2.
	MinSize int
	// MaxIters bounds label propagation sweeps per ego network; default 30.
	MaxIters int
	// Deadline aborts long runs with ErrTimeout (zero = none).
	Deadline time.Time
}

// Name implements Method.
func (Demon) Name() string { return "Demon" }

// Reconstruct implements Method.
func (d Demon) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	eps := d.Epsilon
	if eps <= 0 {
		eps = 1
	}
	minSize := d.MinSize
	if minSize < 2 {
		minSize = 2
	}
	maxIters := d.MaxIters
	if maxIters <= 0 {
		maxIters = 30
	}
	stop := deadlineChecker(d.Deadline)

	var pool [][]int          // global community pool, each sorted
	byNode := map[int][]int{} // node -> pool indices (inverted index)
	index := func(i int, c []int) {
		for _, u := range c {
			byNode[u] = append(byNode[u], i)
		}
	}
	merge := func(c []int) {
		set := make(map[int]bool, len(c))
		for _, u := range c {
			set[u] = true
		}
		// Only communities sharing at least one node can merge, so scan
		// just the inverted-index candidates instead of the whole pool.
		seen := map[int]bool{}
		for _, u := range c {
			for _, i := range byNode[u] {
				if seen[i] {
					continue
				}
				seen[i] = true
				p := pool[i]
				inter := 0
				for _, v := range p {
					if set[v] {
						inter++
					}
				}
				// Absorb the smaller community into the larger when the
				// containment fraction of the smaller reaches eps.
				small := len(c)
				if len(p) < small {
					small = len(p)
				}
				if small > 0 && float64(inter) >= eps*float64(small) {
					merged := unionSorted(p, c)
					pool[i] = merged
					index(i, merged) // index may hold duplicates; seen dedups
					return
				}
			}
		}
		cc := make([]int, len(c))
		copy(cc, c)
		pool = append(pool, cc)
		index(len(pool)-1, cc)
	}

	n := g.NumNodes()
	for u := 0; u < n; u++ {
		if stop() {
			break
		}
		if g.Degree(u) < 1 {
			continue
		}
		for _, comm := range egoCommunities(g, u, maxIters) {
			comm = append(comm, u)
			sort.Ints(comm)
			if len(comm) >= minSize {
				merge(comm)
			}
		}
	}

	rec := hypergraph.New(n)
	for _, c := range pool {
		if len(c) >= minSize && !rec.Contains(c) {
			rec.Add(c)
		}
	}
	if !d.Deadline.IsZero() && time.Now().After(d.Deadline) {
		return rec, ErrTimeout
	}
	return rec, nil
}

// egoCommunities runs synchronous-ish label propagation on the ego-minus-
// ego network of u (the subgraph induced by N(u), excluding u itself) and
// returns the label groups.
func egoCommunities(g *graph.Graph, u int, maxIters int) [][]int {
	nb := g.Neighbors(u)
	if len(nb) == 0 {
		return nil
	}
	pos := make(map[int]int, len(nb))
	for i, v := range nb {
		pos[v] = i
	}
	// Induced adjacency within the ego network.
	adj := make([][]int, len(nb))
	for i, v := range nb {
		for _, w := range nb[i+1:] {
			if g.HasEdge(v, w) {
				j := pos[w]
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	label := make([]int, len(nb))
	for i := range label {
		label[i] = i
	}
	for it := 0; it < maxIters; it++ {
		changed := false
		for i := range nb {
			if len(adj[i]) == 0 {
				continue
			}
			counts := make(map[int]int)
			for _, j := range adj[i] {
				counts[label[j]]++
			}
			best, bestCnt := label[i], 0
			// Deterministic tie-break: smallest label among the most
			// frequent.
			keys := make([]int, 0, len(counts))
			for l := range counts {
				keys = append(keys, l)
			}
			sort.Ints(keys)
			for _, l := range keys {
				if counts[l] > bestCnt {
					best, bestCnt = l, counts[l]
				}
			}
			if best != label[i] {
				label[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	groups := make(map[int][]int)
	for i, l := range label {
		groups[l] = append(groups[l], nb[i])
	}
	labels := make([]int, 0, len(groups))
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	out := make([][]int, 0, len(groups))
	for _, l := range labels {
		out = append(out, groups[l])
	}
	return out
}
