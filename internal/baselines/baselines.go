// Package baselines implements the eight comparison methods evaluated in
// the MARIOH paper (Sect. IV-A):
//
//   - overlapping community detection: Demon (Coscia et al., KDD 2012) and
//     CFinder (Palla et al., Nature 2005);
//   - clique decomposition: MaxClique (Bron–Kerbosch) and CliqueCovering
//     (Conte et al., SAC 2016);
//   - hypergraph reconstruction: Bayesian-MDL (Young et al., Comm. Phys.
//     2021), SHyRe-Count and SHyRe-Motif (Wang & Kleinberg, ICLR 2024), and
//     the multiplicity-aware unsupervised SHyRe-Unsup from the same paper's
//     appendix.
//
// Every method consumes a weighted projected graph and emits a
// reconstructed hypergraph. Supervised methods additionally train on a
// source (graph, hypergraph) pair. Long-running methods honor a deadline so
// the experiment harness can report "OOT" exactly as the paper does.
package baselines

import (
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Method reconstructs a hypergraph from a weighted projected graph.
type Method interface {
	// Name is the display name used in tables.
	Name() string
	// Reconstruct recovers a hypergraph from g. Implementations must not
	// modify g. If the method's deadline expires mid-run it returns the
	// partial result and ErrTimeout.
	Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error)
}

// ErrTimeout is returned when a method exceeds its configured deadline.
var ErrTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string { return "baselines: out of time" }

// deadlineChecker returns a cheap stop() predicate for the given deadline;
// a zero deadline never stops.
func deadlineChecker(deadline time.Time) func() bool {
	if deadline.IsZero() {
		return func() bool { return false }
	}
	n := 0
	return func() bool {
		n++
		if n%64 != 0 { // amortize the clock read
			return false
		}
		return time.Now().After(deadline)
	}
}
