package baselines

import (
	"testing"
	"time"

	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// disjointHypergraph is unambiguous: its projection decomposes into
// disjoint cliques, so every sane method should recover it.
func disjointHypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New(10)
	h.Add([]int{0, 1, 2})
	h.Add([]int{3, 4})
	h.Add([]int{5, 6, 7, 8})
	return h
}

func TestMaxCliqueRecoversDisjointCliques(t *testing.T) {
	h := disjointHypergraph()
	rec, err := MaxClique{}.Reconstruct(h.Project())
	if err != nil {
		t.Fatal(err)
	}
	if j := eval.Jaccard(h, rec); j != 1 {
		t.Fatalf("Jaccard = %v, want 1", j)
	}
}

func TestMaxCliqueMergesOverlap(t *testing.T) {
	// Two triangles sharing an edge project to a graph whose maximal
	// cliques are the triangles; but a filled K4 collapses to one clique.
	h := hypergraph.New(4)
	h.Add([]int{0, 1, 2})
	h.Add([]int{0, 1, 3})
	h.Add([]int{2, 3})
	g := h.Project() // K4 minus nothing: {2,3} edge exists → K4 complete
	rec, _ := MaxClique{}.Reconstruct(g)
	if rec.NumUnique() != 1 {
		t.Fatalf("K4 projection should give 1 maximal clique, got %v", rec.UniqueEdges())
	}
}

func TestCliqueCoveringCoversEveryEdge(t *testing.T) {
	h := hypergraph.New(8)
	h.Add([]int{0, 1, 2})
	h.Add([]int{2, 3, 4})
	h.Add([]int{4, 5})
	h.Add([]int{5, 6, 7})
	g := h.Project()
	rec, err := CliqueCovering{}.Reconstruct(g)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge of g must lie inside at least one reconstructed hyperedge.
	covered := graph.New(g.NumNodes())
	rec.Each(func(nodes []int, _ int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if !covered.HasEdge(nodes[i], nodes[j]) {
					covered.AddWeight(nodes[i], nodes[j], 1)
				}
			}
		}
	})
	for _, e := range g.Edges() {
		if !covered.HasEdge(e.U, e.V) {
			t.Fatalf("edge {%d,%d} not covered", e.U, e.V)
		}
	}
}

func TestBayesianMDLFeasibleAndParsimonius(t *testing.T) {
	h := disjointHypergraph()
	g := h.Project()
	rec, err := BayesianMDL{Seed: 1, Iters: 5000}.Reconstruct(g)
	if err != nil {
		t.Fatal(err)
	}
	if j := eval.Jaccard(h, rec); j != 1 {
		t.Fatalf("Jaccard = %v, want 1 on disjoint cliques (rec=%v)", j, rec.UniqueEdges())
	}
}

func TestBayesianMDLDeadline(t *testing.T) {
	h := disjointHypergraph()
	_, err := BayesianMDL{Seed: 1, Iters: 1 << 30,
		Deadline: time.Now().Add(-time.Second)}.Reconstruct(h.Project())
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestShyreUnsupExactOnDuplicatedTriangle(t *testing.T) {
	// SHyRe-Unsup is multiplicity-aware: a triangle with ω=2 everywhere
	// should be emitted twice.
	h := hypergraph.New(3)
	h.AddMult([]int{0, 1, 2}, 2)
	rec, err := ShyreUnsup{}.Reconstruct(h.Project())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Multiplicity([]int{0, 1, 2}) != 2 {
		t.Fatalf("multiplicity = %d, want 2", rec.Multiplicity([]int{0, 1, 2}))
	}
	if got := eval.MultiJaccard(h, rec); got != 1 {
		t.Fatalf("multi-Jaccard = %v", got)
	}
}

func TestShyreUnsupConsumesAllEdges(t *testing.T) {
	h := disjointHypergraph()
	g := h.Project()
	rec, err := ShyreUnsup{}.Reconstruct(g)
	if err != nil {
		t.Fatal(err)
	}
	// The reconstruction's projection must equal the input graph.
	got := rec.Project()
	if got.TotalWeight() != g.TotalWeight() {
		t.Fatalf("projection weight %d, want %d", got.TotalWeight(), g.TotalWeight())
	}
}

func TestShyreUnsupDeadline(t *testing.T) {
	h := disjointHypergraph()
	_, err := ShyreUnsup{Deadline: time.Now().Add(-time.Second)}.Reconstruct(h.Project())
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestShyreSupervisedEndToEnd(t *testing.T) {
	// Train and reconstruct on the same simple domain.
	src := hypergraph.New(12)
	src.Add([]int{0, 1, 2})
	src.Add([]int{3, 4, 5})
	src.Add([]int{6, 7})
	src.Add([]int{8, 9, 10, 11})
	sh := &Shyre{Seed: 1}
	sh.Train(src.Project(), src)
	rec, err := sh.Reconstruct(src.Project())
	if err != nil {
		t.Fatal(err)
	}
	if j := eval.Jaccard(src, rec); j < 0.99 {
		t.Fatalf("Jaccard = %v on trivially learnable domain (rec=%v)", j, rec.UniqueEdges())
	}
	if sh.Name() != "SHyRe-Count" {
		t.Fatalf("Name = %q", sh.Name())
	}
	if (&Shyre{Motif: true}).Name() != "SHyRe-Motif" {
		t.Fatal("motif name wrong")
	}
}

func TestShyreReconstructBeforeTrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sh := &Shyre{}
	sh.Reconstruct(graph.New(2))
}

func TestDemonFindsEgoCommunities(t *testing.T) {
	// Two dense groups bridged by one node.
	h := hypergraph.New(9)
	h.Add([]int{0, 1, 2, 3})
	h.Add([]int{4, 5, 6, 7})
	h.Add([]int{3, 4}) // bridge
	rec, err := Demon{}.Reconstruct(h.Project())
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumUnique() == 0 {
		t.Fatal("Demon found nothing")
	}
	// Some community should contain the dense group {0,1,2,3}.
	found := false
	rec.Each(func(nodes []int, _ int) {
		if containsAll(nodes, []int{0, 1, 2}) {
			found = true
		}
	})
	if !found {
		t.Fatalf("dense group not found: %v", rec.UniqueEdges())
	}
}

func TestCFinderPercolation(t *testing.T) {
	// Two triangles sharing an edge percolate (k=3) into one community
	// {0,1,2,3}; a distant triangle stays separate.
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {5, 6}} {
		g.AddWeight(e[0], e[1], 1)
	}
	rec, err := CFinder{K: 3}.Reconstruct(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Contains([]int{0, 1, 2, 3}) {
		t.Fatalf("percolated community missing: %v", rec.UniqueEdges())
	}
	if !rec.Contains([]int{4, 5, 6}) {
		t.Fatalf("isolated triangle missing: %v", rec.UniqueEdges())
	}
	if rec.NumUnique() != 2 {
		t.Fatalf("want exactly 2 communities, got %v", rec.UniqueEdges())
	}
}

func TestCFinderNoKCliques(t *testing.T) {
	g := graph.New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(2, 3, 1)
	rec, err := CFinder{K: 3}.Reconstruct(g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumUnique() != 0 {
		t.Fatal("no triangles exist; communities should be empty")
	}
}

func containsAll(haystack, needles []int) bool {
	set := make(map[int]bool, len(haystack))
	for _, v := range haystack {
		set[v] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}
