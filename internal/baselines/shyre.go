package baselines

import (
	"math/rand"
	"time"

	"marioh/internal/core"
	"marioh/internal/features"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Shyre is the supervised hypergraph-reconstruction baseline of Wang &
// Kleinberg (ICLR 2024). Training estimates ρ(n, k) — the expected number
// of size-k hyperedges inside a size-n maximal clique of the source
// projected graph — and fits a clique classifier on structural features
// (SHyRe-Count) or structural + motif features (SHyRe-Motif). At inference
// time each maximal clique of the target graph yields itself plus
// ρ(n, k)-many sampled k-sub-cliques as candidates; candidates the
// classifier scores above 0.5 become hyperedges. Because candidates come
// from sampling, hyperedges that are never sampled are missed — the false
// negatives the paper attributes to SHyRe — and edge multiplicity is
// ignored throughout.
type Shyre struct {
	// Motif switches from count features to motif features.
	Motif bool
	// Oversample multiplies ρ(n,k) when drawing candidate sub-cliques;
	// default 1.
	Oversample float64
	// MaxCliqueLimit caps maximal-clique enumeration; ≤ 0 = 200000.
	MaxCliqueLimit int
	Seed           int64
	// Deadline aborts long runs with ErrTimeout (zero = none).
	Deadline time.Time

	model *core.Model
	rho   map[[2]int]float64 // (n, k) -> expected count
}

// Name implements Method.
func (s *Shyre) Name() string {
	if s.Motif {
		return "SHyRe-Motif"
	}
	return "SHyRe-Count"
}

func (s *Shyre) featurizer() features.Featurizer {
	if s.Motif {
		return features.ShyreMotif{}
	}
	return features.ShyreCount{}
}

func (s *Shyre) limit() int {
	if s.MaxCliqueLimit > 0 {
		return s.MaxCliqueLimit
	}
	return 200000
}

// Train learns ρ(n,k) and the clique classifier from the source pair.
func (s *Shyre) Train(gSrc *graph.Graph, hSrc *hypergraph.Hypergraph) {
	s.model = core.Train(gSrc, hSrc, core.TrainOptions{
		Featurizer: s.featurizer(),
		Seed:       s.Seed,
	})

	// ρ(n,k): average number of size-k hyperedges contained in a size-n
	// maximal clique. Hyperedge containment is tested via a node→hyperedges
	// index to stay near-linear.
	s.rho = make(map[[2]int]float64)
	cliques := gSrc.MaximalCliquesLimit(2, s.limit())
	countN := make(map[int]int)
	edgeIndex := buildNodeIndex(hSrc)
	for _, q := range cliques {
		countN[len(q)]++
		for _, em := range containedHyperedges(hSrc, edgeIndex, q) {
			s.rho[[2]int{len(q), len(em)}]++
		}
	}
	for nk, c := range s.rho {
		s.rho[nk] = c / float64(countN[nk[0]])
	}
}

// buildNodeIndex maps each node to the keys of hyperedges containing it.
func buildNodeIndex(h *hypergraph.Hypergraph) map[int][]string {
	idx := make(map[int][]string)
	for _, k := range h.Keys() {
		for _, u := range h.EdgeByKey(k) {
			idx[u] = append(idx[u], k)
		}
	}
	return idx
}

// containedHyperedges returns the unique hyperedges of h fully contained in
// clique q.
func containedHyperedges(h *hypergraph.Hypergraph, idx map[int][]string, q []int) [][]int {
	inQ := make(map[int]bool, len(q))
	for _, u := range q {
		inQ[u] = true
	}
	seen := make(map[string]bool)
	var out [][]int
	for _, u := range q {
		for _, k := range idx[u] {
			if seen[k] {
				continue
			}
			seen[k] = true
			e := h.EdgeByKey(k)
			ok := true
			for _, v := range e {
				if !inQ[v] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e)
			}
		}
	}
	return out
}

// TrainStats exposes the classifier's training-time breakdown (used by the
// Fig. 6 runtime-breakdown experiment). Valid after Train.
func (s *Shyre) TrainStats() core.TrainStats {
	if s.model == nil {
		return core.TrainStats{}
	}
	return s.model.Stats
}

// Reconstruct implements Method. Train must have been called first.
func (s *Shyre) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	if s.model == nil {
		panic("baselines: Shyre.Reconstruct called before Train")
	}
	over := s.Oversample
	if over <= 0 {
		over = 1
	}
	stop := deadlineChecker(s.Deadline)
	rng := rand.New(rand.NewSource(s.Seed + 17))
	rec := hypergraph.New(g.NumNodes())
	cliques := g.MaximalCliquesLimit(2, s.limit())
	var ps core.PermSampler

	accept := func(q []int, maximal bool) {
		if rec.Contains(q) {
			return
		}
		if s.model.Score(g, q, maximal) > 0.5 {
			rec.Add(q)
		}
	}
	for _, q := range cliques {
		if stop() {
			return rec, ErrTimeout
		}
		accept(q, true)
		n := len(q)
		for k := 2; k < n; k++ {
			expect := s.rho[[2]int{n, k}] * over
			draws := int(expect)
			if rng.Float64() < expect-float64(draws) {
				draws++
			}
			for d := 0; d < draws; d++ {
				sub := ps.Sample(q, k, rng)
				accept(sub, false)
			}
		}
	}
	return rec, nil
}
