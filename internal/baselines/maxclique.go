package baselines

import (
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// MaxClique is the clique-decomposition baseline: every maximal clique of
// the projected graph (found with Bron–Kerbosch, Algorithm 457) becomes one
// hyperedge. It ignores edge multiplicity entirely, so overlapping
// hyperedges are fused into their union clique and duplicated hyperedges
// are never recovered.
type MaxClique struct {
	// Limit caps the number of maximal cliques enumerated; ≤ 0 = unlimited.
	Limit int
}

// Name implements Method.
func (MaxClique) Name() string { return "MaxClique" }

// Reconstruct implements Method.
func (m MaxClique) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	limit := m.Limit
	if limit <= 0 {
		limit = -1
	}
	rec := hypergraph.New(g.NumNodes())
	for _, q := range g.MaximalCliquesLimit(2, limit) {
		if !rec.Contains(q) {
			rec.Add(q)
		}
	}
	return rec, nil
}
