package baselines

import (
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// CliqueCovering is the greedy edge-clique-cover baseline after Conte,
// Grossi & Marino (SAC 2016): edges are scanned in a fixed order, and every
// still-uncovered edge seeds a clique that is grown greedily, preferring
// extensions that cover the most still-uncovered edges. Each grown clique
// becomes one hyperedge; the process stops when every edge of the projected
// graph is covered.
type CliqueCovering struct{}

// Name implements Method.
func (CliqueCovering) Name() string { return "CliqueCovering" }

// Reconstruct implements Method.
func (CliqueCovering) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	rec := hypergraph.New(g.NumNodes())
	covered := make(map[[2]int]bool, g.NumEdges())
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for _, e := range g.Edges() {
		if covered[key(e.U, e.V)] {
			continue
		}
		clique := growClique(g, e.U, e.V, covered)
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				covered[key(clique[i], clique[j])] = true
			}
		}
		if !rec.Contains(clique) {
			rec.Add(clique)
		}
	}
	return rec, nil
}

// growClique extends {u, v} into a (maximal within greedy order) clique,
// at each step adding the common neighbor that covers the most uncovered
// edges, breaking ties toward the smallest node id for determinism.
func growClique(g *graph.Graph, u, v int, covered map[[2]int]bool) []int {
	clique := []int{u, v}
	cands := g.CommonNeighbors(u, v)
	for len(cands) > 0 {
		best, bestGain := -1, -1
		for _, c := range cands {
			gain := 0
			for _, q := range clique {
				a, b := c, q
				if a > b {
					a, b = b, a
				}
				if !covered[[2]int{a, b}] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			break
		}
		clique = append(clique, best)
		// Shrink candidates to common neighbors of the grown clique.
		var next []int
		for _, c := range cands {
			if c != best && g.HasEdge(c, best) {
				next = append(next, c)
			}
		}
		cands = next
	}
	return clique
}
