package baselines

import (
	"sort"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// ShyreUnsup is the multiplicity-aware unsupervised method from the
// appendix of Wang & Kleinberg (ICLR 2024): at each iteration the maximal
// cliques of the residual graph are ranked — larger cliques first, and
// among equal sizes the one with the lowest average edge multiplicity —
// and the single top-ranked clique is converted into a hyperedge, its
// edges' multiplicities decremented by one. The process repeats until no
// edges remain. Because maximal cliques are recomputed after every single
// replacement, the method is accurate on small inputs but scales poorly —
// exactly the behaviour (including OOT entries) reported in the paper.
type ShyreUnsup struct {
	// MaxRounds bounds the number of replacements; ≤ 0 = no bound.
	MaxRounds int
	// Deadline aborts long runs with ErrTimeout (zero = none).
	Deadline time.Time
}

// Name implements Method.
func (ShyreUnsup) Name() string { return "SHyRe-Unsup" }

// Reconstruct implements Method.
func (s ShyreUnsup) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	work := g.Clone()
	rec := hypergraph.New(g.NumNodes())
	rounds := 0
	for work.NumEdges() > 0 {
		if s.MaxRounds > 0 && rounds >= s.MaxRounds {
			break
		}
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			return rec, ErrTimeout
		}
		rounds++
		best := topRankedClique(work)
		if best == nil {
			break
		}
		rec.Add(best)
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				work.AddWeight(best[i], best[j], -1)
			}
		}
	}
	return rec, nil
}

// topRankedClique returns the maximal clique preferred by SHyRe-Unsup's
// ranking: maximum size, then minimum average edge multiplicity, then
// lexicographically smallest for determinism.
func topRankedClique(g *graph.Graph) []int {
	var best []int
	bestAvg := 0.0
	g.EachMaximalClique(2, func(q []int) bool {
		avg := avgMultiplicity(g, q)
		if best == nil || len(q) > len(best) ||
			(len(q) == len(best) && (avg < bestAvg ||
				(avg == bestAvg && lexLess(q, best)))) {
			best = append(best[:0], q...)
			bestAvg = avg
		}
		return true
	})
	if best == nil {
		return nil
	}
	sort.Ints(best)
	return best
}

func avgMultiplicity(g *graph.Graph, q []int) float64 {
	if len(q) < 2 {
		return 0
	}
	sum, cnt := 0, 0
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			sum += g.Weight(q[i], q[j])
			cnt++
		}
	}
	return float64(sum) / float64(cnt)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
