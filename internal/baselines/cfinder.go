package baselines

import (
	"sort"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// CFinder is the k-clique percolation baseline of Palla et al. (Nature
// 2005): two k-cliques are adjacent when they share k−1 nodes; the node
// union of each connected component of this clique-adjacency relation is
// one community, emitted as a hyperedge. K is chosen per the paper's setup
// from a quantile of the source hyperedge sizes (see experiments).
type CFinder struct {
	// K is the clique size for percolation; default 3.
	K int
	// Limit caps k-clique enumeration; ≤ 0 = 500000.
	Limit int
	// Deadline aborts long runs with ErrTimeout (zero = none).
	Deadline time.Time
}

// Name implements Method.
func (CFinder) Name() string { return "CFinder" }

// Reconstruct implements Method.
func (c CFinder) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	k := c.K
	if k < 2 {
		k = 3
	}
	limit := c.Limit
	if limit <= 0 {
		limit = 500000
	}
	rec := hypergraph.New(g.NumNodes())
	cliques := g.KCliques(k, limit)
	if len(cliques) == 0 {
		return rec, nil
	}
	if !c.Deadline.IsZero() && time.Now().After(c.Deadline) {
		return rec, ErrTimeout
	}

	// Union-find over cliques; cliques sharing a (k-1)-subset are united.
	parent := make([]int, len(cliques))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Index cliques by each of their (k-1)-subsets.
	bySub := make(map[string][]int)
	sub := make([]int, 0, k)
	for i, q := range cliques {
		for drop := 0; drop < k; drop++ {
			sub = sub[:0]
			for j, v := range q {
				if j != drop {
					sub = append(sub, v)
				}
			}
			key := hypergraph.KeySorted(sub)
			bySub[key] = append(bySub[key], i)
		}
	}
	for _, group := range bySub {
		for i := 1; i < len(group); i++ {
			union(group[0], group[i])
		}
	}
	if !c.Deadline.IsZero() && time.Now().After(c.Deadline) {
		return rec, ErrTimeout
	}

	comps := make(map[int]map[int]bool)
	for i, q := range cliques {
		r := find(i)
		if comps[r] == nil {
			comps[r] = make(map[int]bool)
		}
		for _, v := range q {
			comps[r][v] = true
		}
	}
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		nodes := make([]int, 0, len(comps[r]))
		for v := range comps[r] {
			nodes = append(nodes, v)
		}
		sort.Ints(nodes)
		if len(nodes) >= 2 && !rec.Contains(nodes) {
			rec.Add(nodes)
		}
	}
	return rec, nil
}
