package baselines

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// BayesianMDL reproduces the behaviour of Young, Petri & Peixoto's Bayesian
// hypergraph reconstruction (Communications Physics 2021): among all
// hypergraphs whose clique expansion covers the observed graph, prefer the
// most parsimonious one. The original uses MCMC over a generative model;
// this implementation optimizes an explicit two-part description-length
// objective over clique covers with simulated-annealing local moves (merge
// two hyperedges whose union is a clique, split a hyperedge, drop a
// redundant hyperedge). The substitution is documented in DESIGN.md — the
// method is defined by its parsimony principle, which the MDL objective
// encodes directly.
type BayesianMDL struct {
	// Iters is the number of annealing moves; default 20000.
	Iters int
	// Seed drives the annealing proposals.
	Seed int64
	// Deadline aborts long runs with ErrTimeout (zero = none).
	Deadline time.Time
}

// Name implements Method.
func (BayesianMDL) Name() string { return "Bayesian-MDL" }

// descLen is the two-part description length of a cover: each hyperedge of
// size s costs (s+1)·log2(n) bits (s node ids plus a size marker), so
// parsimony prefers few, large hyperedges — but only when they are genuine
// cliques, since covers must stay feasible.
func descLen(sizes []int, n int) float64 {
	logn := math.Log2(float64(n) + 2)
	total := 0.0
	for _, s := range sizes {
		total += float64(s+1) * logn
	}
	return total
}

// Reconstruct implements Method.
func (b BayesianMDL) Reconstruct(g *graph.Graph) (*hypergraph.Hypergraph, error) {
	iters := b.Iters
	if iters <= 0 {
		iters = 20000
	}
	stop := deadlineChecker(b.Deadline)
	rng := rand.New(rand.NewSource(b.Seed))

	// Initial feasible cover: the greedy edge clique cover.
	init, _ := CliqueCovering{}.Reconstruct(g)
	cover := init.UniqueEdges()
	n := g.NumNodes()

	// coverage[pair] = how many hyperedges of the cover contain the pair.
	coverage := make(map[[2]int]int)
	pair := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	addCov := func(e []int, d int) {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				coverage[pair(e[i], e[j])] += d
			}
		}
	}
	for _, e := range cover {
		addCov(e, 1)
	}

	cost := func(e []int) float64 {
		return float64(len(e)+1) * math.Log2(float64(n)+2)
	}
	// redundant reports whether removing e keeps every pair covered.
	redundant := func(e []int) bool {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				if coverage[pair(e[i], e[j])] < 2 {
					return false
				}
			}
		}
		return true
	}

	temp0 := 2.0
	for it := 0; it < iters && len(cover) > 1; it++ {
		if stop() {
			return coverToHypergraph(cover, n), ErrTimeout
		}
		temp := temp0 * (1 - float64(it)/float64(iters))
		switch rng.Intn(3) {
		case 0: // drop a redundant hyperedge (always improves DL)
			i := rng.Intn(len(cover))
			if redundant(cover[i]) {
				addCov(cover[i], -1)
				cover[i] = cover[len(cover)-1]
				cover = cover[:len(cover)-1]
			}
		case 1: // merge two hyperedges whose union is a clique
			i, j := rng.Intn(len(cover)), rng.Intn(len(cover))
			if i == j {
				continue
			}
			union := unionSorted(cover[i], cover[j])
			if len(union) > len(cover[i])+len(cover[j])-1 {
				continue // overlap < 1 node; merging rarely helps
			}
			if !g.IsClique(union) {
				continue
			}
			delta := cost(union) - cost(cover[i]) - cost(cover[j])
			if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-9)) {
				addCov(cover[i], -1)
				addCov(cover[j], -1)
				if i < j {
					i, j = j, i
				}
				cover[i] = cover[len(cover)-1]
				cover = cover[:len(cover)-1]
				cover[j] = union
				addCov(union, 1)
			}
		case 2: // split a hyperedge into two overlapping halves
			i := rng.Intn(len(cover))
			e := cover[i]
			if len(e) < 4 {
				continue
			}
			cut := 2 + rng.Intn(len(e)-3)
			perm := rng.Perm(len(e))
			a := make([]int, 0, cut+1)
			bp := make([]int, 0, len(e)-cut+1)
			for k, p := range perm {
				if k < cut {
					a = append(a, e[p])
				} else {
					bp = append(bp, e[p])
				}
			}
			// Overlap one shared node so every pair across the cut that was
			// only covered by e stays covered... it does not in general, so
			// verify feasibility cheaply: require all cross pairs covered
			// at least twice.
			feasible := true
			for _, x := range a {
				for _, y := range bp {
					if coverage[pair(x, y)] < 2 {
						feasible = false
						break
					}
				}
				if !feasible {
					break
				}
			}
			if !feasible {
				continue
			}
			sort.Ints(a)
			sort.Ints(bp)
			delta := cost(a) + cost(bp) - cost(e)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-9)) {
				addCov(e, -1)
				cover[i] = a
				addCov(a, 1)
				cover = append(cover, bp)
				addCov(bp, 1)
			}
		}
	}
	return coverToHypergraph(cover, n), nil
}

func coverToHypergraph(cover [][]int, n int) *hypergraph.Hypergraph {
	rec := hypergraph.New(n)
	for _, e := range cover {
		if len(e) >= 2 && !rec.Contains(e) {
			rec.Add(e)
		}
	}
	return rec
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
