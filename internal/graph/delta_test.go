package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// TestDeltaRoundTrip pins the delta text format: Write → Read is identity.
func TestDeltaRoundTrip(t *testing.T) {
	ops := []DeltaOp{
		{Kind: DeltaAdd, U: 0, V: 5, W: 3},
		{Kind: DeltaRemove, U: 5, V: 9},
		{Kind: DeltaSet, U: 2, V: 3, W: 0},
		{Kind: DeltaSet, U: 7, V: 1, W: 12},
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round-trip mismatch:\n got %v\nwant %v", got, ops)
	}
}

// TestReadDeltasRejectsMalformed: every malformed line is a parse error.
func TestReadDeltasRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"? 1 2 3",          // unknown op
		"+ 1 2",            // add without weight
		"- 1 2 3",          // remove with weight
		"+ 1 1 2",          // self-loop
		"+ 1 2 0",          // non-positive add
		"= 1 2 -4",         // negative set
		"+ a 2 3",          // non-numeric
		"+ -1 2 3",         // negative node
		"+ 1 2 3 4",        // too many fields
		"+ 1 2 3000000000", // weight overflows int32
		"= 1 2 2147483648", // likewise via set
	} {
		if _, err := ReadDeltas(bytes.NewBufferString(text)); err == nil {
			t.Errorf("ReadDeltas(%q) accepted malformed input", text)
		}
	}
	// Comments and blank lines are fine.
	ops, err := ReadDeltas(bytes.NewBufferString("% header\n\n+ 1 2 3\n"))
	if err != nil || len(ops) != 1 {
		t.Fatalf("comment/blank handling broken: ops=%v err=%v", ops, err)
	}
}

// components drops singletons from ConnectedComponents, the reference the
// Tracker must match.
func nonSingletonComponents(g *Graph) [][]int {
	var out [][]int
	for _, c := range g.ConnectedComponents() {
		if len(c) > 1 {
			out = append(out, c)
		}
	}
	return out
}

// TestTrackerDeleteSplitsComponent: deleting a bridge must split the
// tracked component in two, and re-inserting it must merge them back.
func TestTrackerDeleteSplitsComponent(t *testing.T) {
	g := New(6)
	tr := NewTracker(g)
	for _, op := range []DeltaOp{
		{Kind: DeltaAdd, U: 0, V: 1, W: 1},
		{Kind: DeltaAdd, U: 1, V: 2, W: 1},
		{Kind: DeltaAdd, U: 3, V: 4, W: 2},
		{Kind: DeltaAdd, U: 2, V: 3, W: 1}, // bridge joining the two halves
	} {
		tr.Apply(op)
	}
	if got := tr.Components(); len(got) != 1 || !reflect.DeepEqual(got[0], []int{0, 1, 2, 3, 4}) {
		t.Fatalf("after joins: components %v", got)
	}
	tr.Apply(DeltaOp{Kind: DeltaRemove, U: 2, V: 3})
	got := tr.Components()
	want := [][]int{{0, 1, 2}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after bridge delete: components %v, want %v", got, want)
	}
	// A non-bridge delete must not split: add a second path first.
	tr.Apply(DeltaOp{Kind: DeltaAdd, U: 2, V: 3, W: 1})
	tr.Apply(DeltaOp{Kind: DeltaAdd, U: 2, V: 4, W: 1})
	tr.Apply(DeltaOp{Kind: DeltaRemove, U: 2, V: 3})
	if got := tr.Components(); len(got) != 1 {
		t.Fatalf("redundant-edge delete split the component: %v", got)
	}
	// Severing a leaf leaves a singleton behind, which drops out of
	// Components but stays individually addressable.
	tr.Apply(DeltaOp{Kind: DeltaRemove, U: 0, V: 1})
	if got := tr.Component(0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("severed leaf component = %v, want [0]", got)
	}
}

// TestTrackerBitsetChurn drives a hub across the bitset promotion
// threshold and back down through the demotion point using delta ops
// only, checking adjacency reads and component tracking at every stage.
func TestTrackerBitsetChurn(t *testing.T) {
	n := 200
	g := New(n)
	tr := NewTracker(g)
	th := bitsetDegThreshold(n)

	// Promote: connect the hub to 0..th neighbors.
	for v := 1; v <= th; v++ {
		tr.Apply(DeltaOp{Kind: DeltaAdd, U: 0, V: v, W: 1 + v%3})
	}
	if g.bits[0] == nil {
		t.Fatalf("hub not promoted at degree %d (threshold %d)", g.Degree(0), th)
	}
	if got := len(tr.Components()); got != 1 {
		t.Fatalf("star should be one component, got %d", got)
	}

	// Demote via deletes: the star decomposes one leaf at a time and the
	// dense row must drop at the hysteresis point without corrupting reads.
	for v := th; g.Degree(0) >= th/2; v-- {
		tr.Apply(DeltaOp{Kind: DeltaRemove, U: 0, V: v})
		if g.HasEdge(0, v) {
			t.Fatalf("edge {0,%d} survived removal", v)
		}
		if v > 1 && !g.HasEdge(0, v-1) {
			t.Fatalf("edge {0,%d} lost during churn", v-1)
		}
	}
	if g.bits[0] != nil {
		t.Fatalf("hub row not demoted at degree %d (drop point %d)", g.Degree(0), th/2)
	}

	// Re-promote through weight-sets, then verify the component count
	// equals degree+1 after the churn (hub + remaining leaves).
	for v := th; g.Degree(0) < th; v-- {
		tr.Apply(DeltaOp{Kind: DeltaSet, U: 0, V: v, W: 2})
	}
	if g.bits[0] == nil {
		t.Fatalf("hub not re-promoted at degree %d", g.Degree(0))
	}
	comp := tr.Component(0)
	if len(comp) != g.Degree(0)+1 {
		t.Fatalf("hub component has %d nodes, want %d", len(comp), g.Degree(0)+1)
	}
	if !reflect.DeepEqual(tr.Components(), nonSingletonComponents(g)) {
		t.Fatal("tracker components diverged from full rescan after churn")
	}
}

// TestTrackerMatchesRescanUnderRandomDeltas is the engine-vs-naive
// property test extended to randomized delta sequences: a random op
// stream (inserts, deletes, weight sets, node growth) is replayed through
// a Tracker and a map-backed reference graph; after every batch the
// tracker's components must equal a from-scratch component scan and the
// adjacency reads must match the reference.
func TestTrackerMatchesRescanUnderRandomDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	g := New(n)
	tr := NewTracker(g)
	ref := newRef(n)

	randomOp := func() DeltaOp {
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		switch rng.Intn(6) {
		case 0: // delete (may be a structural no-op on a non-edge)
			return DeltaOp{Kind: DeltaRemove, U: u, V: v}
		case 1: // absolute set, sometimes to zero
			return DeltaOp{Kind: DeltaSet, U: u, V: v, W: rng.Intn(4)}
		default:
			return DeltaOp{Kind: DeltaAdd, U: u, V: v, W: 1 + rng.Intn(3)}
		}
	}

	for batch := 0; batch < 60; batch++ {
		if batch == 30 {
			// Grow mid-stream: deltas may reference unseen nodes.
			n = 90
			tr.EnsureNodes(n)
			ref.ensure(n)
		}
		for i := 0; i < 25; i++ {
			op := randomOp()
			tr.Apply(op)
			w := ref.weight(op.U, op.V)
			switch op.Kind {
			case DeltaAdd:
				ref.addWeight(op.U, op.V, op.W)
			case DeltaRemove:
				if w > 0 {
					ref.addWeight(op.U, op.V, -w)
				}
			case DeltaSet:
				if d := op.W - w; d != 0 {
					ref.addWeight(op.U, op.V, d)
				}
			}
		}
		// Components: incremental tracking vs from-scratch scan.
		if got, want := tr.Components(), nonSingletonComponents(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: tracker components %v, want %v", batch, got, want)
		}
		// Adjacency: engine vs map reference on every pair.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if got, want := g.Weight(u, v), ref.weight(u, v); got != want {
					t.Fatalf("batch %d: Weight(%d,%d) = %d, want %d", batch, u, v, got, want)
				}
			}
		}
		// Touched covers every endpoint referenced this batch... reset for
		// the next batch after spot-checking monotonicity.
		for _, u := range tr.Touched() {
			if u < 0 || u >= g.NumNodes() {
				t.Fatalf("batch %d: touched node %d out of range", batch, u)
			}
		}
		tr.ResetTouched()
		if len(tr.Touched()) != 0 {
			t.Fatal("ResetTouched left residue")
		}
	}
}

// TestTrackerTouched: the touched set is exactly the endpoints of the ops
// applied since the last reset.
func TestTrackerTouched(t *testing.T) {
	g := New(10)
	tr := NewTracker(g)
	if tr.Graph() != g {
		t.Fatal("Graph accessor lost the tracked graph")
	}
	tr.Apply(DeltaOp{Kind: DeltaAdd, U: 1, V: 2, W: 1})
	tr.Apply(DeltaOp{Kind: DeltaRemove, U: 7, V: 8})
	if got := tr.Touched(); !reflect.DeepEqual(got, []int{1, 2, 7, 8}) {
		t.Fatalf("touched %v, want [1 2 7 8]", got)
	}
	if !tr.TouchedSet(7) || tr.TouchedSet(3) {
		t.Fatal("TouchedSet membership wrong")
	}
	tr.ResetTouched()
	tr.Apply(DeltaOp{Kind: DeltaAdd, U: 0, V: 9, W: 2})
	if got := tr.Touched(); !reflect.DeepEqual(got, []int{0, 9}) {
		t.Fatalf("touched after reset %v, want [0 9]", got)
	}
}
