package graph

import (
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := New(7)
	g.AddWeight(0, 3, 4)
	g.AddWeight(1, 2, 1)
	var sb strings.Builder
	if err := g.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 7 {
		t.Fatalf("nodes = %d, want 7 (header)", got.NumNodes())
	}
	if got.Weight(0, 3) != 4 || got.Weight(1, 2) != 1 {
		t.Fatal("weights lost in round trip")
	}
	if got.NumEdges() != 2 {
		t.Fatalf("edges = %d", got.NumEdges())
	}
}

func TestReadDefaultsWeight(t *testing.T) {
	g, err := Read(strings.NewReader("0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 1 {
		t.Fatal("missing weight should default to 1")
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"0", "0 1 2 3", "a 1", "0 b", "0 1 -2"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}
