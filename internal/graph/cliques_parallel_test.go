package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomTestGraph builds a seeded multi-component G(n, p)-style graph with
// a planted dense core, the shapes that exercise both the per-seed
// fan-out and the bitset rows.
func randomTestGraph(t *testing.T, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddWeight(u, v, 1+rng.Intn(3))
			}
		}
	}
	// Plant a clique over every fourth node so maximal cliques overlap.
	for u := 0; u < n; u += 4 {
		for v := u + 4; v < n && v < u+20; v += 4 {
			if !g.HasEdge(u, v) {
				g.AddWeight(u, v, 1)
			}
		}
	}
	return g
}

func TestMaximalCliquesParallelMatchesSerial(t *testing.T) {
	graphs := map[string]*Graph{
		"sparse":    randomTestGraph(t, 60, 0.05, 1),
		"medium":    randomTestGraph(t, 48, 0.2, 2),
		"dense":     randomTestGraph(t, 28, 0.5, 3),
		"empty":     New(10),
		"singleton": New(1),
	}
	for name, g := range graphs {
		serialAll := g.MaximalCliquesLimit(2, -1)
		limits := []int{-1, 1, 2, 7, len(serialAll), len(serialAll) + 10}
		for _, workers := range []int{1, 2, 3, 8, 64} {
			for _, limit := range limits {
				want := g.MaximalCliquesLimit(2, limit)
				got := g.MaximalCliquesParallel(2, limit, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: workers=%d limit=%d: parallel enumeration diverged: got %d cliques, want %d",
						name, workers, limit, len(got), len(want))
				}
			}
		}
	}
}

// TestCliqueSeederStreamMatchesEachMaximalClique pins the seeder contract
// the parallel paths are built on: running every seed in index order
// reproduces the EachMaximalClique stream element for element.
func TestCliqueSeederStreamMatchesEachMaximalClique(t *testing.T) {
	g := randomTestGraph(t, 40, 0.15, 7)
	var want [][]int
	g.EachMaximalClique(2, func(c []int) bool {
		want = append(want, append([]int(nil), c...))
		return true
	})
	s := g.CliqueSeeds(2)
	var sc CliqueEnum
	var got [][]int
	for i := 0; i < s.NumSeeds(); i++ {
		if !s.EnumSeed(i, &sc, func(c []int) bool {
			got = append(got, append([]int(nil), c...))
			return true
		}) {
			t.Fatalf("EnumSeed(%d) reported an early stop without fn asking for one", i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seed-by-seed stream diverged: got %d cliques, want %d", len(got), len(want))
	}
}
