package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 0 || g.TotalWeight() != 0 {
		t.Fatalf("empty graph has edges: %d weight %d", g.NumEdges(), g.TotalWeight())
	}
}

func TestAddWeightCreatesAndRemovesEdges(t *testing.T) {
	g := New(4)
	g.AddWeight(0, 1, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing after AddWeight")
	}
	if g.Weight(0, 1) != 3 || g.Weight(1, 0) != 3 {
		t.Fatalf("weight = %d/%d, want 3", g.Weight(0, 1), g.Weight(1, 0))
	}
	if g.NumEdges() != 1 || g.TotalWeight() != 3 {
		t.Fatalf("NumEdges=%d TotalWeight=%d", g.NumEdges(), g.TotalWeight())
	}
	g.AddWeight(0, 1, -3)
	if g.HasEdge(0, 1) || g.NumEdges() != 0 || g.TotalWeight() != 0 {
		t.Fatal("edge survived removal to zero weight")
	}
}

func TestAddWeightPanics(t *testing.T) {
	g := New(3)
	mustPanic(t, "self-loop", func() { g.AddWeight(1, 1, 1) })
	mustPanic(t, "negative result", func() { g.AddWeight(0, 1, -1) })
	mustPanic(t, "out of range", func() { g.AddWeight(0, 7, 1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestSetWeight(t *testing.T) {
	g := New(3)
	g.SetWeight(0, 1, 5)
	g.SetWeight(0, 1, 2)
	if g.Weight(0, 1) != 2 {
		t.Fatalf("weight = %d, want 2", g.Weight(0, 1))
	}
	g.SetWeight(0, 1, 0)
	if g.HasEdge(0, 1) {
		t.Fatal("SetWeight(0) should remove the edge")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddWeight(0, 1, 4)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.TotalWeight() != 0 {
		t.Fatal("RemoveEdge left residue")
	}
	g.RemoveEdge(0, 2) // removing a non-edge is a no-op
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(4)
	g.AddWeight(0, 1, 2)
	g.AddWeight(0, 2, 3)
	if g.Degree(0) != 2 || g.WeightedDegree(0) != 5 {
		t.Fatalf("Degree=%d WeightedDegree=%d, want 2 and 5", g.Degree(0), g.WeightedDegree(0))
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := g.Neighbors(3); len(got) != 0 {
		t.Fatalf("Neighbors(3) = %v, want empty", got)
	}
}

func TestEdgesSortedAndClone(t *testing.T) {
	g := New(4)
	g.AddWeight(2, 3, 1)
	g.AddWeight(0, 1, 2)
	g.AddWeight(1, 3, 5)
	want := []Edge{{0, 1, 2}, {1, 3, 5}, {2, 3, 1}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
	c := g.Clone()
	c.AddWeight(0, 1, 1)
	if g.Weight(0, 1) != 2 {
		t.Fatal("Clone shares state with original")
	}
	if c.NumEdges() != g.NumEdges() || c.TotalWeight() != g.TotalWeight()+1 {
		t.Fatal("Clone counters wrong")
	}
}

func TestCommonNeighborsAndSumMin(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0 and 1.
	g := New(4)
	g.AddWeight(0, 1, 5)
	g.AddWeight(0, 2, 2)
	g.AddWeight(1, 2, 3)
	g.AddWeight(0, 3, 4)
	g.AddWeight(1, 3, 1)
	if got := g.CommonNeighbors(0, 1); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("CommonNeighbors = %v", got)
	}
	// MHH(0,1) = min(2,3) + min(4,1) = 2 + 1 = 3.
	if got := g.SumMinCommonWeight(0, 1); got != 3 {
		t.Fatalf("SumMinCommonWeight = %d, want 3", got)
	}
	// Endpoints themselves must never be counted.
	if got := g.SumMinCommonWeight(0, 2); got != min(5, 3) {
		t.Fatalf("SumMinCommonWeight(0,2) = %d, want %d", got, min(5, 3))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestIsClique(t *testing.T) {
	g := New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	if !g.IsClique([]int{0, 1, 2}) {
		t.Fatal("triangle not recognized as clique")
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Fatal("non-clique accepted")
	}
	if !g.IsClique([]int{0}) || !g.IsClique(nil) {
		t.Fatal("trivial cliques rejected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(4, 5, 1)
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestTriangles(t *testing.T) {
	g := New(5)
	// K4 on {0,1,2,3} has 4 triangles.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	if got := g.CountTriangles(); got != 4 {
		t.Fatalf("CountTriangles = %d, want 4", got)
	}
	// Early stop.
	n := 0
	g.Triangles(func(_, _, _ int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d triangles", n)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddWeight(1, 3, 7)
	g.AddWeight(3, 4, 2)
	sub, back := g.Subgraph([]int{1, 3})
	if sub.NumNodes() != 2 || sub.Weight(0, 1) != 7 {
		t.Fatalf("subgraph wrong: nodes=%d w=%d", sub.NumNodes(), sub.Weight(0, 1))
	}
	if !reflect.DeepEqual(back, []int{1, 3}) {
		t.Fatalf("back-map = %v", back)
	}
}

func TestDegeneracyOrdering(t *testing.T) {
	// A triangle with a pendant: degeneracy 2.
	g := New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	order, d := g.DegeneracyOrdering()
	if d != 2 {
		t.Fatalf("degeneracy = %d, want 2", d)
	}
	if len(order) != 4 {
		t.Fatalf("order covers %d nodes", len(order))
	}
	seen := map[int]bool{}
	for _, u := range order {
		if seen[u] {
			t.Fatalf("node %d repeated in ordering", u)
		}
		seen[u] = true
	}
}

func TestMaximalCliquesTriangleWithPendant(t *testing.T) {
	g := New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	got := g.MaximalCliques(2)
	want := [][]int{{0, 1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MaximalCliques = %v, want %v", got, want)
	}
}

func TestMaximalCliquesCompleteGraph(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	got := g.MaximalCliques(2)
	if len(got) != 1 || len(got[0]) != 6 {
		t.Fatalf("K6 should have exactly one maximal clique, got %v", got)
	}
}

func TestMaximalCliquesLimit(t *testing.T) {
	g := New(8)
	// Four disjoint edges = four maximal cliques.
	for i := 0; i < 8; i += 2 {
		g.AddWeight(i, i+1, 1)
	}
	if got := g.MaximalCliquesLimit(2, 2); len(got) != 2 {
		t.Fatalf("limit ignored: %d cliques", len(got))
	}
}

func TestKCliques(t *testing.T) {
	g := New(5)
	// K4 on {0,1,2,3}: C(4,3)=4 triangles, C(4,2)=6 edges.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	if got := g.KCliques(3, -1); len(got) != 4 {
		t.Fatalf("KCliques(3) found %d, want 4", len(got))
	}
	if got := g.KCliques(2, -1); len(got) != 6 {
		t.Fatalf("KCliques(2) found %d, want 6", len(got))
	}
	if got := g.KCliques(4, -1); len(got) != 1 {
		t.Fatalf("KCliques(4) found %d, want 1", len(got))
	}
	if got := g.KCliques(5, -1); len(got) != 0 {
		t.Fatalf("KCliques(5) found %d, want 0", len(got))
	}
	if got := g.KCliques(3, 2); len(got) != 2 {
		t.Fatalf("KCliques limit ignored: %d", len(got))
	}
}

// TestQuickCloneEquality: Clone preserves weights for arbitrary edge
// insertion sequences.
func TestQuickCloneEquality(t *testing.T) {
	f := func(pairs [][3]uint8) bool {
		g := New(16)
		for _, p := range pairs {
			u, v := int(p[0]%16), int(p[1]%16)
			if u == v {
				continue
			}
			g.AddWeight(u, v, int(p[2]%5)+1)
		}
		c := g.Clone()
		if c.NumEdges() != g.NumEdges() || c.TotalWeight() != g.TotalWeight() {
			return false
		}
		for _, e := range g.Edges() {
			if c.Weight(e.U, e.V) != e.W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaximalCliquesAreMaximalCliques: every emitted set is a clique
// and cannot be extended, on random graphs.
func TestQuickMaximalCliquesAreMaximalCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(8)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.AddWeight(i, j, 1+rng.Intn(3))
				}
			}
		}
		cliques := g.MaximalCliques(1)
		seen := map[string]bool{}
		for _, q := range cliques {
			if !g.IsClique(q) {
				t.Fatalf("trial %d: %v is not a clique", trial, q)
			}
			// Maximality: no node extends q.
			for v := 0; v < n; v++ {
				if containsInt(q, v) {
					continue
				}
				ext := true
				for _, u := range q {
					if !g.HasEdge(u, v) {
						ext = false
						break
					}
				}
				if ext {
					t.Fatalf("trial %d: clique %v extendable by %d", trial, q, v)
				}
			}
			k := keyOf(q)
			if seen[k] {
				t.Fatalf("trial %d: duplicate clique %v", trial, q)
			}
			seen[k] = true
		}
		// Completeness: every maximal clique found by brute force appears.
		for _, q := range bruteForceMaximalCliques(g) {
			if !seen[keyOf(q)] {
				t.Fatalf("trial %d: missing maximal clique %v", trial, q)
			}
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func keyOf(q []int) string {
	b := make([]byte, 0, len(q)*3)
	for _, v := range q {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

// bruteForceMaximalCliques enumerates all subsets (n ≤ ~15) and keeps the
// maximal cliques.
func bruteForceMaximalCliques(g *Graph) [][]int {
	n := g.NumNodes()
	var cliques [][]int
	for mask := 1; mask < 1<<n; mask++ {
		var q []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				q = append(q, v)
			}
		}
		if !g.IsClique(q) {
			continue
		}
		maximal := true
		for v := 0; v < n && maximal; v++ {
			if containsInt(q, v) {
				continue
			}
			ext := true
			for _, u := range q {
				if !g.HasEdge(u, v) {
					ext = false
					break
				}
			}
			if ext {
				maximal = false
			}
		}
		if maximal {
			sort.Ints(q)
			cliques = append(cliques, q)
		}
	}
	return cliques
}
