// Package graph implements the weighted undirected graph substrate used by
// every reconstruction method in this repository.
//
// A Graph stores, for each unordered node pair {u, v}, an integer weight
// ω(u, v) ≥ 1 called the edge multiplicity: the number of hyperedges of the
// original hypergraph that contain both u and v (see the clique-expansion
// projection in internal/hypergraph). The package provides the primitives
// the MARIOH paper relies on: weighted adjacency with cheap edge updates,
// neighbor intersection, degeneracy ordering, Bron–Kerbosch maximal-clique
// enumeration with pivoting, and fixed-size clique enumeration for the
// CFinder baseline.
//
// # Adjacency engine
//
// Adjacency is stored as per-node sorted neighbor arrays with parallel
// weight arrays (a mutable CSR layout): Weight and HasEdge binary-search
// the shorter endpoint list, and the intersection primitives
// (CommonNeighbors, CountCommonNeighbors, SumMinCommonWeight) run a linear
// merge over two sorted arrays instead of probing hash maps. Nodes whose
// degree reaches bitsetDegThreshold additionally carry a dense bitset row
// over the whole node set, giving O(1) HasEdge against hubs; rows are
// created and dropped incrementally by AddWeight/RemoveEdge (with 2×
// hysteresis to avoid thrashing), so the residual-graph mutation pattern of
// the bidirectional search keeps its fast paths. Weighted degrees are
// cached and maintained on every update. All iteration orders are
// ascending by node id, which makes every algorithm in this package
// deterministic.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Edge is a weighted undirected edge with U < V.
type Edge struct {
	U, V int
	W    int
}

// bitsetDegThreshold is the degree at which a node gets a dense bitset row:
// max(64, n/64). Below 64 neighbors a binary search beats the cache miss of
// a dense row lookup; above n/64 the row (n/8 bytes) costs no more than the
// sorted neighbor array it shadows, so hubs get O(1) membership tests.
func bitsetDegThreshold(n int) int {
	t := n / 64
	if t < 64 {
		t = 64
	}
	return t
}

// Graph is a weighted undirected graph over nodes 0..NumNodes()-1.
// Self-loops are forbidden. A zero-weight pair is, by definition, a
// non-edge: AddWeight removes the pair once its weight reaches zero.
type Graph struct {
	nbrs [][]int32  // sorted neighbor ids per node
	wts  [][]int32  // wts[u][i] = ω(u, nbrs[u][i])
	bits [][]uint64 // dense membership row for high-degree nodes, else nil
	wdeg []int      // cached Σ_v ω(u, v)

	// numEdges and totalWeight are the only cross-component state AddWeight
	// touches: every other write lands in the rows of the two endpoints,
	// which the parallel per-component search mutates from one goroutine per
	// component. Keeping the global counters atomic makes that concurrent
	// mutation of edge-disjoint components race-free, and their final values
	// stay deterministic because counter updates commute.
	numEdges    atomic.Int64
	totalWeight atomic.Int64
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		nbrs: make([][]int32, n),
		wts:  make([][]int32, n),
		bits: make([][]uint64, n),
		wdeg: make([]int, n),
	}
}

// NumNodes returns the number of nodes (isolated nodes included).
func (g *Graph) NumNodes() int { return len(g.nbrs) }

// NumEdges returns the number of node pairs with positive weight.
func (g *Graph) NumEdges() int { return int(g.numEdges.Load()) }

// TotalWeight returns the sum of ω(u, v) over all edges.
func (g *Graph) TotalWeight() int { return int(g.totalWeight.Load()) }

// EnsureNodes grows the node set so that it contains at least n nodes.
// Existing bitset rows are widened to cover the new (edgeless) nodes.
func (g *Graph) EnsureNodes(n int) {
	if n <= len(g.nbrs) {
		return
	}
	for len(g.nbrs) < n {
		g.nbrs = append(g.nbrs, nil)
		g.wts = append(g.wts, nil)
		g.bits = append(g.bits, nil)
		g.wdeg = append(g.wdeg, 0)
	}
	words := bitsetWords(n)
	for u, row := range g.bits {
		if row != nil && len(row) < words {
			grown := make([]uint64, words)
			copy(grown, row)
			g.bits[u] = grown
		}
	}
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.nbrs) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.nbrs)))
	}
}

// searchNbr binary-searches for v in u's sorted neighbor list, returning the
// insertion index and whether v is present.
func (g *Graph) searchNbr(u, v int) (int, bool) {
	s := g.nbrs[u]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && int(s[lo]) == v
}

// Weight returns ω(u, v), or 0 if {u, v} is not an edge.
func (g *Graph) Weight(u, v int) int {
	g.check(u)
	g.check(v)
	if len(g.nbrs[v]) < len(g.nbrs[u]) {
		u, v = v, u
	}
	if i, ok := g.searchNbr(u, v); ok {
		return int(g.wts[u][i])
	}
	return 0
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if r := g.bits[u]; r != nil {
		return bitsetHas(r, v)
	}
	if r := g.bits[v]; r != nil {
		return bitsetHas(r, u)
	}
	if len(g.nbrs[v]) < len(g.nbrs[u]) {
		u, v = v, u
	}
	_, ok := g.searchNbr(u, v)
	return ok
}

// insertNbr inserts v with weight w into u's sorted lists at index i.
func (g *Graph) insertNbr(u, v, w, i int) {
	g.nbrs[u] = append(g.nbrs[u], 0)
	copy(g.nbrs[u][i+1:], g.nbrs[u][i:])
	g.nbrs[u][i] = int32(v)
	g.wts[u] = append(g.wts[u], 0)
	copy(g.wts[u][i+1:], g.wts[u][i:])
	g.wts[u][i] = int32(w)
	if r := g.bits[u]; r != nil {
		bitsetSet(r, v)
	} else if len(g.nbrs[u]) >= bitsetDegThreshold(len(g.nbrs)) {
		g.buildBitRow(u)
	}
}

// removeNbr deletes index i from u's sorted lists.
func (g *Graph) removeNbr(u, v, i int) {
	copy(g.nbrs[u][i:], g.nbrs[u][i+1:])
	g.nbrs[u] = g.nbrs[u][:len(g.nbrs[u])-1]
	copy(g.wts[u][i:], g.wts[u][i+1:])
	g.wts[u] = g.wts[u][:len(g.wts[u])-1]
	if r := g.bits[u]; r != nil {
		bitsetClear(r, v)
		// Hysteresis: keep the row until the degree halves below the build
		// threshold, so a node oscillating around it doesn't rebuild rows.
		if len(g.nbrs[u]) < bitsetDegThreshold(len(g.nbrs))/2 {
			g.bits[u] = nil
		}
	}
}

// buildBitRow materializes the dense membership row of u.
func (g *Graph) buildBitRow(u int) {
	row := make([]uint64, bitsetWords(len(g.nbrs)))
	for _, v := range g.nbrs[u] {
		bitsetSet(row, int(v))
	}
	g.bits[u] = row
}

// AddWeight adds delta (which may be negative) to ω(u, v). The pair becomes
// an edge when its weight turns positive and stops being one when the weight
// returns to zero. AddWeight panics if the result would be negative or if
// u == v.
func (g *Graph) AddWeight(u, v, delta int) {
	if u == v {
		panic("graph: self-loop")
	}
	g.check(u)
	g.check(v)
	if delta == 0 {
		return
	}
	i, ok := g.searchNbr(u, v)
	old := 0
	if ok {
		old = int(g.wts[u][i])
	}
	nw := old + delta
	if nw < 0 {
		panic(fmt.Sprintf("graph: weight of {%d,%d} would become %d", u, v, nw))
	}
	if nw > math.MaxInt32 {
		// Multiplicities are stored as int32; a weight this large means a
		// caller bug, not a real hypergraph.
		panic(fmt.Sprintf("graph: weight of {%d,%d} would overflow int32 (%d)", u, v, nw))
	}
	switch {
	case old == 0 && nw > 0:
		j, _ := g.searchNbr(v, u)
		g.insertNbr(u, v, nw, i)
		g.insertNbr(v, u, nw, j)
		g.numEdges.Add(1)
	case old > 0 && nw == 0:
		j, _ := g.searchNbr(v, u)
		g.removeNbr(u, v, i)
		g.removeNbr(v, u, j)
		g.numEdges.Add(-1)
	default:
		j, _ := g.searchNbr(v, u)
		g.wts[u][i] = int32(nw)
		g.wts[v][j] = int32(nw)
	}
	g.wdeg[u] += delta
	g.wdeg[v] += delta
	g.totalWeight.Add(int64(delta))
}

// SetWeight sets ω(u, v) to w exactly.
func (g *Graph) SetWeight(u, v, w int) {
	g.AddWeight(u, v, w-g.Weight(u, v))
}

// RemoveEdge deletes the edge {u, v} regardless of its current weight.
func (g *Graph) RemoveEdge(u, v int) {
	w := g.Weight(u, v)
	if w > 0 {
		g.AddWeight(u, v, -w)
	}
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.nbrs[u])
}

// WeightedDegree returns the sum of ω(u, v) over the neighbors v of u —
// the node-level feature used by the MARIOH classifier. The value is cached
// and maintained incrementally, so this is O(1).
func (g *Graph) WeightedDegree(u int) int {
	g.check(u)
	return g.wdeg[u]
}

// Neighbors returns the neighbors of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, len(g.nbrs[u]))
	for i, v := range g.nbrs[u] {
		out[i] = int(v)
	}
	return out
}

// NeighborWeights calls fn for every neighbor v of u with ω(u, v), in
// ascending order of v. fn must not mutate the graph.
func (g *Graph) NeighborWeights(u int, fn func(v, w int)) {
	g.check(u)
	ws := g.wts[u]
	for i, v := range g.nbrs[u] {
		fn(int(v), int(ws[i]))
	}
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := range g.nbrs {
		ws := g.wts[u]
		for i, v := range g.nbrs[u] {
			if u < int(v) {
				out = append(out, Edge{U: u, V: int(v), W: int(ws[i])})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nbrs: make([][]int32, len(g.nbrs)),
		wts:  make([][]int32, len(g.wts)),
		bits: make([][]uint64, len(g.bits)),
		wdeg: append([]int(nil), g.wdeg...),
	}
	c.numEdges.Store(g.numEdges.Load())
	c.totalWeight.Store(g.totalWeight.Load())
	for u := range g.nbrs {
		if g.nbrs[u] != nil {
			c.nbrs[u] = append([]int32(nil), g.nbrs[u]...)
			c.wts[u] = append([]int32(nil), g.wts[u]...)
		}
		if g.bits[u] != nil {
			c.bits[u] = append([]uint64(nil), g.bits[u]...)
		}
	}
	return c
}

// CommonNeighbors returns the sorted intersection N(u) ∩ N(v).
func (g *Graph) CommonNeighbors(u, v int) []int {
	g.check(u)
	g.check(v)
	var out []int
	g.eachCommonNeighbor(u, v, func(z int) { out = append(out, z) })
	return out
}

// CountCommonNeighbors returns |N(u) ∩ N(v)| without materializing the
// intersection — the triangle count through the edge {u, v}.
func (g *Graph) CountCommonNeighbors(u, v int) int {
	g.check(u)
	g.check(v)
	// Two dense rows intersect with word-level popcounts.
	if ru, rv := g.bits[u], g.bits[v]; ru != nil && rv != nil {
		return bitsetPopcountAnd(ru, rv)
	}
	n := 0
	g.eachCommonNeighbor(u, v, func(int) { n++ })
	return n
}

// eachCommonNeighbor calls fn with every z ∈ N(u) ∩ N(v) in ascending
// order, using a bitset filter against hub rows when available and a sorted
// merge otherwise.
func (g *Graph) eachCommonNeighbor(u, v int, fn func(z int)) {
	a, b := g.nbrs[u], g.nbrs[v]
	if len(a) > len(b) {
		a, b = b, a
		u, v = v, u
	}
	// a is the shorter list; if the longer side has a dense row, filter.
	if r := g.bits[v]; r != nil {
		for _, z := range a {
			if bitsetHas(r, int(z)) {
				fn(int(z))
			}
		}
		return
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(int(a[i]))
			i++
			j++
		}
	}
}

// SumMinCommonWeight returns Σ_{z ∈ N(u)∩N(v)} min(ω(u,z), ω(v,z)).
// In MARIOH this quantity is MHH(u, v): the maximum possible number of
// hyperedges of size ≥ 3 containing both u and v (Lemma 1 of the paper).
// Computed as a linear merge of the two sorted neighbor arrays.
func (g *Graph) SumMinCommonWeight(u, v int) int {
	g.check(u)
	g.check(v)
	a, b := g.nbrs[u], g.nbrs[v]
	wa, wb := g.wts[u], g.wts[v]
	s := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			z := int(a[i])
			if z != u && z != v {
				if wa[i] < wb[j] {
					s += int(wa[i])
				} else {
					s += int(wb[j])
				}
			}
			i++
			j++
		}
	}
	return s
}

// IsClique reports whether every pair of distinct nodes in the given set is
// an edge. The empty set and singletons are cliques by convention.
func (g *Graph) IsClique(nodes []int) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted ascending, ordered by their smallest node. Isolated nodes form
// singleton components.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.nbrs)
	seen := make([]bool, n)
	var comps [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		comp := []int{}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.nbrs[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, int(v))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Triangles calls fn for every triangle a < b < c in the graph. If fn
// returns false, enumeration stops early.
func (g *Graph) Triangles(fn func(a, b, c int) bool) {
	n := len(g.nbrs)
	for a := 0; a < n; a++ {
		na := g.nbrs[a]
		for i, b := range na {
			if int(b) <= a {
				continue
			}
			for _, c := range na[i+1:] {
				if c > b && g.HasEdge(int(b), int(c)) {
					if !fn(a, int(b), int(c)) {
						return
					}
				}
			}
		}
	}
}

// CountTriangles returns the number of triangles in the graph.
func (g *Graph) CountTriangles() int {
	n := 0
	g.Triangles(func(_, _, _ int) bool { n++; return true })
	return n
}

// Subgraph returns the induced subgraph on the given nodes, relabeled
// 0..len(nodes)-1 in the order given, together with the mapping back to the
// original node ids. The dense index array makes extraction O(n + deg(S)),
// cheap enough for the reconstruction engine to carve out its dirty
// components every round.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	idx := make([]int32, len(g.nbrs))
	for i := range idx {
		idx[i] = -1
	}
	for i, u := range nodes {
		g.check(u)
		idx[u] = int32(i)
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		ws := g.wts[u]
		for k, v := range g.nbrs[u] {
			if j := idx[v]; j >= 0 && int32(i) < j {
				sub.AddWeight(i, int(j), int(ws[k]))
			}
		}
	}
	back := make([]int, len(nodes))
	copy(back, nodes)
	return sub, back
}
