// Package graph implements the weighted undirected graph substrate used by
// every reconstruction method in this repository.
//
// A Graph stores, for each unordered node pair {u, v}, an integer weight
// ω(u, v) ≥ 1 called the edge multiplicity: the number of hyperedges of the
// original hypergraph that contain both u and v (see the clique-expansion
// projection in internal/hypergraph). The package provides the primitives
// the MARIOH paper relies on: weighted adjacency with O(1) edge updates,
// neighbor intersection, degeneracy ordering, Bron–Kerbosch maximal-clique
// enumeration with pivoting, and fixed-size clique enumeration for the
// CFinder baseline.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted undirected edge with U < V.
type Edge struct {
	U, V int
	W    int
}

// Graph is a weighted undirected graph over nodes 0..NumNodes()-1.
// Self-loops are forbidden. A zero-weight pair is, by definition, a
// non-edge: AddWeight removes the pair once its weight reaches zero.
type Graph struct {
	adj         []map[int]int
	numEdges    int
	totalWeight int
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([]map[int]int, n)}
}

// NumNodes returns the number of nodes (isolated nodes included).
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of node pairs with positive weight.
func (g *Graph) NumEdges() int { return g.numEdges }

// TotalWeight returns the sum of ω(u, v) over all edges.
func (g *Graph) TotalWeight() int { return g.totalWeight }

// EnsureNodes grows the node set so that it contains at least n nodes.
func (g *Graph) EnsureNodes(n int) {
	for len(g.adj) < n {
		g.adj = append(g.adj, nil)
	}
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Weight returns ω(u, v), or 0 if {u, v} is not an edge.
func (g *Graph) Weight(u, v int) int {
	g.check(u)
	g.check(v)
	if g.adj[u] == nil {
		return 0
	}
	return g.adj[u][v]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.Weight(u, v) > 0 }

// AddWeight adds delta (which may be negative) to ω(u, v). The pair becomes
// an edge when its weight turns positive and stops being one when the weight
// returns to zero. AddWeight panics if the result would be negative or if
// u == v.
func (g *Graph) AddWeight(u, v, delta int) {
	if u == v {
		panic("graph: self-loop")
	}
	g.check(u)
	g.check(v)
	if delta == 0 {
		return
	}
	old := 0
	if g.adj[u] != nil {
		old = g.adj[u][v]
	}
	nw := old + delta
	if nw < 0 {
		panic(fmt.Sprintf("graph: weight of {%d,%d} would become %d", u, v, nw))
	}
	switch {
	case old == 0 && nw > 0:
		if g.adj[u] == nil {
			g.adj[u] = make(map[int]int)
		}
		if g.adj[v] == nil {
			g.adj[v] = make(map[int]int)
		}
		g.adj[u][v] = nw
		g.adj[v][u] = nw
		g.numEdges++
	case old > 0 && nw == 0:
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		g.numEdges--
	default:
		g.adj[u][v] = nw
		g.adj[v][u] = nw
	}
	g.totalWeight += delta
}

// SetWeight sets ω(u, v) to w exactly.
func (g *Graph) SetWeight(u, v, w int) {
	g.AddWeight(u, v, w-g.Weight(u, v))
}

// RemoveEdge deletes the edge {u, v} regardless of its current weight.
func (g *Graph) RemoveEdge(u, v int) {
	w := g.Weight(u, v)
	if w > 0 {
		g.AddWeight(u, v, -w)
	}
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// WeightedDegree returns the sum of ω(u, v) over the neighbors v of u —
// the node-level feature used by the MARIOH classifier.
func (g *Graph) WeightedDegree(u int) int {
	g.check(u)
	s := 0
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// Neighbors returns the neighbors of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NeighborWeights calls fn for every neighbor v of u with ω(u, v).
// Iteration order is unspecified; fn must not mutate the graph.
func (g *Graph) NeighborWeights(u int, fn func(v, w int)) {
	g.check(u)
	for v, w := range g.adj[u] {
		fn(v, w)
	}
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	c.numEdges = g.numEdges
	c.totalWeight = g.totalWeight
	for u, m := range g.adj {
		if m == nil {
			continue
		}
		cm := make(map[int]int, len(m))
		for v, w := range m {
			cm[v] = w
		}
		c.adj[u] = cm
	}
	return c
}

// CommonNeighbors returns the sorted intersection N(u) ∩ N(v).
func (g *Graph) CommonNeighbors(u, v int) []int {
	g.check(u)
	g.check(v)
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int
	for z := range a {
		if _, ok := b[z]; ok {
			out = append(out, z)
		}
	}
	sort.Ints(out)
	return out
}

// SumMinCommonWeight returns Σ_{z ∈ N(u)∩N(v)} min(ω(u,z), ω(v,z)).
// In MARIOH this quantity is MHH(u, v): the maximum possible number of
// hyperedges of size ≥ 3 containing both u and v (Lemma 1 of the paper).
func (g *Graph) SumMinCommonWeight(u, v int) int {
	g.check(u)
	g.check(v)
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	s := 0
	for z, wa := range a {
		if z == u || z == v {
			continue
		}
		if wb, ok := b[z]; ok {
			if wa < wb {
				s += wa
			} else {
				s += wb
			}
		}
	}
	return s
}

// IsClique reports whether every pair of distinct nodes in the given set is
// an edge. The empty set and singletons are cliques by convention.
func (g *Graph) IsClique(nodes []int) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted ascending, ordered by their smallest node. Isolated nodes form
// singleton components.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.adj)
	seen := make([]bool, n)
	var comps [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		comp := []int{}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Triangles calls fn for every triangle a < b < c in the graph. If fn
// returns false, enumeration stops early.
func (g *Graph) Triangles(fn func(a, b, c int) bool) {
	n := len(g.adj)
	for a := 0; a < n; a++ {
		na := g.Neighbors(a)
		for i, b := range na {
			if b <= a {
				continue
			}
			for _, c := range na[i+1:] {
				if c > b && g.HasEdge(b, c) {
					if !fn(a, b, c) {
						return
					}
				}
			}
		}
	}
}

// CountTriangles returns the number of triangles in the graph.
func (g *Graph) CountTriangles() int {
	n := 0
	g.Triangles(func(_, _, _ int) bool { n++; return true })
	return n
}

// Subgraph returns the induced subgraph on the given nodes, relabeled
// 0..len(nodes)-1 in the order given, together with the mapping back to the
// original node ids.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		for v, w := range g.adj[u] {
			if j, ok := idx[v]; ok && i < j {
				sub.AddWeight(i, j, w)
			}
		}
	}
	back := make([]int, len(nodes))
	copy(back, nodes)
	return sub, back
}
