package graph

import "math/bits"

// bitset helpers. A bitset is a []uint64 whose bit i (word i/64, bit i%64)
// marks membership of element i. All operands of the binary helpers must
// have the same length.

// bitsetWords returns the number of 64-bit words needed for n elements.
func bitsetWords(n int) int { return (n + 63) >> 6 }

func bitsetSet(s []uint64, i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func bitsetClear(s []uint64, i int)    { s[i>>6] &^= 1 << (uint(i) & 63) }
func bitsetHas(s []uint64, i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// bitsetZero clears every word.
func bitsetZero(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// bitsetEmpty reports whether no bit is set.
func bitsetEmpty(s []uint64) bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// bitsetAndInto stores a & b into dst.
func bitsetAndInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// bitsetAndNotInto stores a &^ b into dst.
func bitsetAndNotInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// bitsetPopcountAnd returns |a ∩ b| without materializing the intersection —
// the word-level pivot-counting kernel of the Bron–Kerbosch rewrite.
func bitsetPopcountAnd(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}
