package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DeltaKind discriminates the mutation a DeltaOp performs.
type DeltaKind uint8

// The delta operations a projected-graph edge stream carries.
const (
	// DeltaAdd adds W (> 0) to ω(U, V), inserting the edge if absent.
	DeltaAdd DeltaKind = iota
	// DeltaRemove deletes the edge {U, V} regardless of its weight; a
	// no-op when the pair is not an edge.
	DeltaRemove
	// DeltaSet sets ω(U, V) to exactly W (≥ 0; 0 deletes the edge).
	DeltaSet
)

// DeltaOp is one mutation of a weighted projected graph: an edge insert or
// weight increase (DeltaAdd), an edge delete (DeltaRemove), or an absolute
// weight change (DeltaSet). Batches of DeltaOps are the unit of change the
// incremental reconstruction engine consumes.
type DeltaOp struct {
	Kind DeltaKind
	U, V int
	W    int
}

// String renders the op in the delta text format (see WriteDeltas).
func (op DeltaOp) String() string {
	switch op.Kind {
	case DeltaAdd:
		return fmt.Sprintf("+ %d %d %d", op.U, op.V, op.W)
	case DeltaRemove:
		return fmt.Sprintf("- %d %d", op.U, op.V)
	default:
		return fmt.Sprintf("= %d %d %d", op.U, op.V, op.W)
	}
}

// WriteDeltas serializes a delta stream in a line-oriented text format,
// one op per line:
//
//	"+ u v w"   add w to ω(u, v) (insert when absent)
//	"- u v"     delete the edge {u, v}
//	"= u v w"   set ω(u, v) to exactly w
func WriteDeltas(w io.Writer, ops []DeltaOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintln(bw, op.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDeltas parses the format produced by WriteDeltas. Blank lines and
// "%" comments are skipped.
func ReadDeltas(r io.Reader) ([]DeltaOp, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ops []DeltaOp
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		op := DeltaOp{}
		switch fields[0] {
		case "+":
			op.Kind = DeltaAdd
		case "-":
			op.Kind = DeltaRemove
		case "=":
			op.Kind = DeltaSet
		default:
			return nil, fmt.Errorf("graph: delta line %d: unknown op %q", lineNo, fields[0])
		}
		wantArgs := 3
		if op.Kind == DeltaRemove {
			wantArgs = 2
		}
		if len(fields) != 1+wantArgs {
			return nil, fmt.Errorf("graph: delta line %d: %q wants %d arguments, got %d",
				lineNo, fields[0], wantArgs, len(fields)-1)
		}
		args := make([]int, wantArgs)
		for i := range args {
			n, err := strconv.Atoi(fields[1+i])
			if err != nil {
				return nil, fmt.Errorf("graph: delta line %d: bad number %q", lineNo, fields[1+i])
			}
			args[i] = n
		}
		op.U, op.V = args[0], args[1]
		if wantArgs == 3 {
			op.W = args[2]
		}
		if op.U == op.V || op.U < 0 || op.V < 0 {
			return nil, fmt.Errorf("graph: delta line %d: bad edge {%d, %d}", lineNo, op.U, op.V)
		}
		switch {
		case op.Kind == DeltaAdd && op.W <= 0:
			return nil, fmt.Errorf("graph: delta line %d: add weight %d must be > 0", lineNo, op.W)
		case op.Kind == DeltaSet && op.W < 0:
			return nil, fmt.Errorf("graph: delta line %d: set weight %d must be ≥ 0", lineNo, op.W)
		case op.W > math.MaxInt32:
			// Multiplicities are stored as int32 (see Graph.AddWeight);
			// reject out-of-range weights at the wire instead of panicking
			// deep inside the engine.
			return nil, fmt.Errorf("graph: delta line %d: weight %d overflows int32", lineNo, op.W)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Tracker maintains the connected components of a mutating graph
// incrementally, so a long-lived reconstruction session can tell which
// components a batch of deltas touched without rescanning the whole graph.
//
// Inserts that join two components are handled by weighted-union
// relabeling (the smaller component's member list folds into the larger
// one, the deletion-tolerant form of union-find merging); a delete that
// removes an edge triggers a rescan bounded to the nodes of the affected
// component — never the whole graph — to detect splits. Weight changes
// that keep an edge alive are structural no-ops.
//
// All mutations must flow through the Tracker (Apply); mutating the
// underlying graph directly desynchronizes the labels.
type Tracker struct {
	g *Graph
	// label[u] identifies u's component; the identifier is an arbitrary
	// member node of the component (singletons label themselves).
	label []int
	// members[l] lists the nodes labeled l, unsorted. Singleton (edgeless)
	// components are tracked too, so label growth stays uniform.
	members map[int][]int
	// touched accumulates the endpoints of every op since the last
	// ResetTouched, the dirty seed the incremental engine works from.
	touched map[int]bool
}

// NewTracker builds a Tracker over g from a full component scan. The
// Tracker takes ownership of g's structure: apply all further mutations
// through Apply.
func NewTracker(g *Graph) *Tracker {
	t := &Tracker{
		g:       g,
		label:   make([]int, g.NumNodes()),
		members: make(map[int][]int, g.NumNodes()/2+1),
		touched: map[int]bool{},
	}
	for _, comp := range g.ConnectedComponents() {
		l := comp[0]
		for _, u := range comp {
			t.label[u] = l
		}
		t.members[l] = append([]int(nil), comp...)
	}
	return t
}

// Graph returns the tracked graph. Callers must not mutate it directly.
func (t *Tracker) Graph() *Graph { return t.g }

// EnsureNodes grows the tracked graph (and the label space) to n nodes;
// new nodes start as singleton components.
func (t *Tracker) EnsureNodes(n int) {
	if n <= len(t.label) {
		return
	}
	t.g.EnsureNodes(n)
	for len(t.label) < n {
		u := len(t.label)
		t.label = append(t.label, u)
		t.members[u] = []int{u}
	}
}

// Apply performs one delta op on the tracked graph, updating the component
// labels and the touched set. Node ids beyond the current node set grow it.
func (t *Tracker) Apply(op DeltaOp) {
	if op.U == op.V {
		panic("graph: delta self-loop")
	}
	top := op.U
	if op.V > top {
		top = op.V
	}
	t.EnsureNodes(top + 1)

	u, v := op.U, op.V
	// Mark before mutating: if a graph primitive panics mid-op (weight
	// overflow), the endpoints still read as touched, so consumers that
	// survive the panic re-derive this component's state instead of
	// trusting caches.
	t.touched[u] = true
	t.touched[v] = true
	before := t.g.Weight(u, v)
	switch op.Kind {
	case DeltaAdd:
		t.g.AddWeight(u, v, op.W)
	case DeltaRemove:
		t.g.RemoveEdge(u, v)
	case DeltaSet:
		t.g.SetWeight(u, v, op.W)
	}
	after := t.g.Weight(u, v)

	switch {
	case before == 0 && after > 0:
		t.union(u, v)
	case before > 0 && after == 0:
		t.rescan(u, v)
	}
}

// union merges the components of u and v (no-op when already joined) by
// relabeling the smaller member list into the larger.
func (t *Tracker) union(u, v int) {
	lu, lv := t.label[u], t.label[v]
	if lu == lv {
		return
	}
	if len(t.members[lu]) < len(t.members[lv]) {
		lu, lv = lv, lu
	}
	for _, x := range t.members[lv] {
		t.label[x] = lu
	}
	t.members[lu] = append(t.members[lu], t.members[lv]...)
	delete(t.members, lv)
}

// rescan handles the deletion of edge {u, v}: a traversal from u bounded
// to the old component's nodes decides whether the component split, and
// relabels the severed side if it did.
func (t *Tracker) rescan(u, v int) {
	old := t.label[u]
	reached := t.reachable(u)
	if reached[v] {
		return // still connected through another path
	}
	// Split: nodes of the old component not reached from u move to a new
	// component rooted at v's side. Both sides get fresh labels so stale
	// roots never linger.
	var sideU, sideV []int
	for _, x := range t.members[old] {
		if reached[x] {
			sideU = append(sideU, x)
		} else {
			sideV = append(sideV, x)
		}
	}
	delete(t.members, old)
	for _, x := range sideU {
		t.label[x] = u
	}
	t.members[u] = sideU
	for _, x := range sideV {
		t.label[x] = v
	}
	t.members[v] = sideV
}

// reachable collects the nodes reachable from s in the current graph. The
// traversal is bounded by s's component, not the graph.
func (t *Tracker) reachable(s int) map[int]bool {
	seen := map[int]bool{s: true}
	stack := []int{s}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.g.NeighborWeights(x, func(y, _ int) {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		})
	}
	return seen
}

// Component returns the sorted nodes of the component containing u.
func (t *Tracker) Component(u int) []int {
	if u < 0 || u >= len(t.label) {
		panic(fmt.Sprintf("graph: tracker node %d out of range [0,%d)", u, len(t.label)))
	}
	out := append([]int(nil), t.members[t.label[u]]...)
	sort.Ints(out)
	return out
}

// Components returns the node sets of all components with at least one
// edge, each sorted ascending, ordered by their smallest node — matching
// Graph.ConnectedComponents with singletons dropped.
func (t *Tracker) Components() [][]int {
	var out [][]int
	for _, m := range t.members {
		if len(m) > 1 {
			comp := append([]int(nil), m...)
			sort.Ints(comp)
			out = append(out, comp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Touched returns the sorted nodes mutated since the last ResetTouched.
func (t *Tracker) Touched() []int {
	out := make([]int, 0, len(t.touched))
	for u := range t.touched {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// TouchedSet reports whether u was mutated since the last ResetTouched.
func (t *Tracker) TouchedSet(u int) bool { return t.touched[u] }

// ResetTouched clears the touched set, starting a new delta batch.
func (t *Tracker) ResetTouched() { t.touched = map[int]bool{} }
