package graph

import (
	"math/bits"
	"slices"
	"sort"
)

// DegeneracyOrdering returns the nodes in a degeneracy ordering (repeatedly
// removing a minimum-degree node) together with the graph's degeneracy. The
// ordering makes Bron–Kerbosch run in O(d · n · 3^(d/3)) for degeneracy d.
func (g *Graph) DegeneracyOrdering() (order []int, degeneracy int) {
	n := len(g.nbrs)
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = len(g.nbrs[u])
	}
	q := newBucketQueue(deg)
	order = make([]int, 0, n)
	for {
		u, d, ok := q.popMin()
		if !ok {
			break
		}
		order = append(order, u)
		if d > degeneracy {
			degeneracy = d
		}
		for _, v := range g.nbrs[u] {
			if !q.isRemoved(int(v)) {
				q.decrease(int(v))
			}
		}
	}
	return order, degeneracy
}

// MaximalCliques enumerates every maximal clique with at least minSize
// nodes, using Bron–Kerbosch with max-degree pivoting over a degeneracy
// ordering. Cliques are returned as sorted node slices in a deterministic
// order. Isolated nodes never appear (a clique needs ≥ 2 nodes to matter for
// reconstruction, and minSize is clamped to ≥ 1).
func (g *Graph) MaximalCliques(minSize int) [][]int {
	return g.MaximalCliquesLimit(minSize, -1)
}

// MaximalCliquesLimit behaves like MaximalCliques but stops after emitting
// limit cliques (limit < 0 means no limit).
func (g *Graph) MaximalCliquesLimit(minSize, limit int) [][]int {
	var out [][]int
	g.EachMaximalClique(minSize, func(c []int) bool {
		cc := make([]int, len(c))
		copy(cc, c)
		out = append(out, cc)
		return limit < 0 || len(out) < limit
	})
	slices.SortFunc(out, cmpIntSlice)
	return out
}

// EachMaximalClique calls fn with every maximal clique of size ≥ minSize.
// The slice passed to fn is reused between calls; copy it to retain it.
// Enumeration stops early when fn returns false. fn must not mutate the
// graph.
//
// The enumeration is the bitset form of Bron–Kerbosch over a degeneracy
// ordering: each seed vertex u spans a local universe N(u) (at most the
// degeneracy many P-candidates), over which the P and X sets are dense
// bitsets and the pivot is chosen by word-level popcounts of adj ∩ P. All
// per-seed buffers are reused, so enumeration allocates O(1) amortized
// memory per seed instead of per recursive call.
func (g *Graph) EachMaximalClique(minSize int, fn func(clique []int) bool) {
	s := g.CliqueSeeds(minSize)
	var sc CliqueEnum
	for i := 0; i < s.NumSeeds(); i++ {
		if !s.EnumSeed(i, &sc, fn) {
			return
		}
	}
}

// CliqueSeeder exposes the per-seed structure of the Bron–Kerbosch
// enumeration: the degeneracy ordering is computed once, and each seed
// vertex's expansion — an independent subtree of the search — can then be
// run on its own, with caller-provided scratch. That per-seed granularity
// is what MaximalCliquesParallel fans out across workers, and what the
// fused enumerate→score pipeline in internal/core streams from.
//
// Seeds are indexed 0..NumSeeds()-1 in degeneracy order. Running every
// seed in index order through one CliqueEnum reproduces exactly the
// EachMaximalClique stream; the per-seed sub-streams are independent of
// each other, so they may also be run concurrently (with one CliqueEnum
// per goroutine) and concatenated by seed index to recover the identical
// stream. The graph must not be mutated while a seeder is in use.
type CliqueSeeder struct {
	g       *Graph
	minSize int
	order   []int
	rank    []int
}

// CliqueSeeds computes the degeneracy ordering and returns a seeder over
// it. minSize is clamped to ≥ 1, matching MaximalCliques.
func (g *Graph) CliqueSeeds(minSize int) *CliqueSeeder {
	if minSize < 1 {
		minSize = 1
	}
	order, _ := g.DegeneracyOrdering()
	rank := make([]int, len(g.nbrs))
	for i, u := range order {
		rank[u] = i
	}
	return &CliqueSeeder{g: g, minSize: minSize, order: order, rank: rank}
}

// NumSeeds returns the number of seed vertices (every node, in degeneracy
// order).
func (s *CliqueSeeder) NumSeeds() int { return len(s.order) }

// CliqueEnum is the reusable scratch of one enumeration worker. The zero
// value is ready to use; a CliqueEnum must not be shared between
// concurrently running EnumSeed calls.
type CliqueEnum struct {
	e bkEnum
}

// EnumSeed enumerates the maximal cliques whose Bron–Kerbosch subtree is
// rooted at seed i, calling fn for each exactly as EachMaximalClique does
// (the slice is reused; copy it to retain it). It reports whether
// enumeration ran to completion — false means fn returned false.
func (s *CliqueSeeder) EnumSeed(i int, sc *CliqueEnum, fn func(clique []int) bool) bool {
	e := &sc.e
	e.g = s.g
	e.minSize = s.minSize
	e.fn = fn
	e.stopped = false
	e.seed(s.order[i], s.rank)
	e.fn = nil
	return !e.stopped
}

// bkEnum holds the reusable state of one EachMaximalClique run.
type bkEnum struct {
	g       *Graph
	minSize int
	fn      func([]int) bool
	stopped bool

	r    []int // current clique, original node ids
	emit []int // sorted copy handed to fn

	// Per-seed local universe: ids maps local index → original id, adj is a
	// flat m×w bitset adjacency matrix over the universe, w words per row.
	ids    []int32
	adj    []uint64
	w      int
	p0, x0 []uint64
	levels [][]uint64 // per-depth cand|np|nx scratch, 3w words each
}

func (e *bkEnum) adjRow(j int) []uint64 { return e.adj[j*e.w : (j+1)*e.w] }

// level returns the scratch block for the given recursion depth, growing it
// to 3w words if a previous seed left it smaller.
func (e *bkEnum) level(d int) []uint64 {
	for len(e.levels) <= d {
		e.levels = append(e.levels, nil)
	}
	if cap(e.levels[d]) < 3*e.w {
		e.levels[d] = make([]uint64, 3*e.w)
	}
	return e.levels[d][:3*e.w]
}

// emitR hands the current clique to fn as a sorted copy in a reused buffer.
func (e *bkEnum) emitR() {
	e.emit = append(e.emit[:0], e.r...)
	sort.Ints(e.emit)
	if !e.fn(e.emit) {
		e.stopped = true
	}
}

// seed runs Bron–Kerbosch rooted at u: R = {u}, P = later neighbors in the
// degeneracy ordering, X = earlier ones, both as bitsets over N(u).
func (e *bkEnum) seed(u int, rank []int) {
	g := e.g
	uni := g.nbrs[u]
	m := len(uni)
	e.r = append(e.r[:0], u)
	if m == 0 {
		if e.minSize <= 1 {
			e.emitR()
		}
		return
	}
	w := bitsetWords(m)
	e.w = w
	e.ids = uni
	if cap(e.adj) < m*w {
		e.adj = make([]uint64, m*w)
	}
	e.adj = e.adj[:m*w]
	bitsetZero(e.adj)
	// Row a = neighbors of uni[a] inside the universe: intersect the
	// neighbor list with uni by sorted merge, or via the node's dense row.
	for a := 0; a < m; a++ {
		ida := int(uni[a])
		row := e.adjRow(a)
		if rbits := g.bits[ida]; rbits != nil {
			for j, z := range uni {
				if bitsetHas(rbits, int(z)) {
					bitsetSet(row, j)
				}
			}
			continue
		}
		nb := g.nbrs[ida]
		i, j := 0, 0
		for i < len(nb) && j < m {
			switch {
			case nb[i] < uni[j]:
				i++
			case nb[i] > uni[j]:
				j++
			default:
				bitsetSet(row, j)
				i++
				j++
			}
		}
	}
	if cap(e.p0) < w {
		e.p0 = make([]uint64, w)
		e.x0 = make([]uint64, w)
	}
	p, x := e.p0[:w], e.x0[:w]
	bitsetZero(p)
	bitsetZero(x)
	ru := rank[u]
	for j, v := range uni {
		if rank[int(v)] > ru {
			bitsetSet(p, j)
		} else {
			bitsetSet(x, j)
		}
	}
	e.expand(0, p, x)
}

// expand is the recursive Bron–Kerbosch step on bitset P and X. Both are
// mutated in place; the caller rebuilds its own copies per candidate.
func (e *bkEnum) expand(depth int, p, x []uint64) {
	if e.stopped {
		return
	}
	if bitsetEmpty(p) {
		if bitsetEmpty(x) && len(e.r) >= e.minSize {
			e.emitR()
		}
		return
	}
	w := e.w
	// Pivot: the vertex of P ∪ X with the most neighbors in P, counted with
	// word-level popcounts; ties break to the lowest local index.
	best, pivot := -1, 0
	for wi := 0; wi < w; wi++ {
		merged := p[wi] | x[wi]
		base := wi << 6
		for merged != 0 {
			j := base + bits.TrailingZeros64(merged)
			merged &= merged - 1
			if cnt := bitsetPopcountAnd(e.adjRow(j), p); cnt > best {
				best, pivot = cnt, j
			}
		}
	}
	lv := e.level(depth)
	cand, np, nx := lv[:w], lv[w:2*w], lv[2*w:]
	bitsetAndNotInto(cand, p, e.adjRow(pivot))
	for wi := 0; wi < w; wi++ {
		cw := cand[wi]
		base := wi << 6
		for cw != 0 {
			j := base + bits.TrailingZeros64(cw)
			cw &= cw - 1
			row := e.adjRow(j)
			bitsetAndInto(np, p, row)
			bitsetAndInto(nx, x, row)
			e.r = append(e.r, int(e.ids[j]))
			e.expand(depth+1, np, nx)
			e.r = e.r[:len(e.r)-1]
			if e.stopped {
				return
			}
			bitsetClear(p, j)
			bitsetSet(x, j)
		}
	}
}

// KCliques enumerates all cliques of exactly k nodes (not necessarily
// maximal), as sorted node slices in lexicographic order. If limit ≥ 0,
// enumeration stops after limit cliques. This powers the CFinder
// (k-clique percolation) baseline.
func (g *Graph) KCliques(k, limit int) [][]int {
	if k < 1 {
		return nil
	}
	var out [][]int
	cur := make([]int, 0, k)
	// rec extends cur with nodes from cands (all adjacent to every node in
	// cur, all larger than the last node of cur). Returns false to stop.
	var rec func(cands []int) bool
	rec = func(cands []int) bool {
		if len(cur) == k {
			c := make([]int, k)
			copy(c, cur)
			out = append(out, c)
			return limit < 0 || len(out) < limit
		}
		for i, v := range cands {
			if len(cands)-i < k-len(cur) {
				return true // not enough candidates remain
			}
			cur = append(cur, v)
			var next []int
			for _, w := range cands[i+1:] {
				if g.HasEdge(v, w) {
					next = append(next, w)
				}
			}
			ok := rec(next)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	all := make([]int, 0, len(g.nbrs))
	for u := 0; u < len(g.nbrs); u++ {
		if len(g.nbrs[u]) >= k-1 {
			all = append(all, u)
		}
	}
	rec(all)
	return out
}

// cmpIntSlice is the lexicographic three-way comparison clique sorts order
// by. Concrete (non-reflective) sorting matters here: these sorts run once
// per round over every clique and reflection-based swaps were a measurable
// slice of round CPU.
func cmpIntSlice(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
