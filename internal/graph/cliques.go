package graph

import "sort"

// DegeneracyOrdering returns the nodes in a degeneracy ordering (repeatedly
// removing a minimum-degree node) together with the graph's degeneracy. The
// ordering makes Bron–Kerbosch run in O(d · n · 3^(d/3)) for degeneracy d.
func (g *Graph) DegeneracyOrdering() (order []int, degeneracy int) {
	n := len(g.adj)
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = len(g.adj[u])
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]int, maxDeg+1)
	pos := make([]int, n) // index of u within buckets[deg[u]]
	for u := 0; u < n; u++ {
		pos[u] = len(buckets[deg[u]])
		buckets[deg[u]] = append(buckets[deg[u]], u)
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		u := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[u] {
			continue
		}
		removed[u] = true
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for v := range g.adj[u] {
			if removed[v] {
				continue
			}
			d := deg[v]
			// Lazy deletion: just push v into the lower bucket and let the
			// stale entry be skipped via the removed/deg checks.
			bv := buckets[d]
			i := pos[v]
			if i < len(bv) && bv[i] == v {
				last := len(bv) - 1
				bv[i] = bv[last]
				pos[bv[i]] = i
				buckets[d] = bv[:last]
			} else {
				// Stale position; find and remove (rare).
				for j, w := range bv {
					if w == v {
						last := len(bv) - 1
						bv[j] = bv[last]
						pos[bv[j]] = j
						buckets[d] = bv[:last]
						break
					}
				}
			}
			deg[v] = d - 1
			pos[v] = len(buckets[d-1])
			buckets[d-1] = append(buckets[d-1], v)
			if d-1 < cur {
				cur = d - 1
			}
		}
	}
	return order, degeneracy
}

// MaximalCliques enumerates every maximal clique with at least minSize
// nodes, using Bron–Kerbosch with max-degree pivoting over a degeneracy
// ordering. Cliques are returned as sorted node slices in a deterministic
// order. Isolated nodes never appear (a clique needs ≥ 2 nodes to matter for
// reconstruction, and minSize is clamped to ≥ 1).
func (g *Graph) MaximalCliques(minSize int) [][]int {
	return g.MaximalCliquesLimit(minSize, -1)
}

// MaximalCliquesLimit behaves like MaximalCliques but stops after emitting
// limit cliques (limit < 0 means no limit).
func (g *Graph) MaximalCliquesLimit(minSize, limit int) [][]int {
	if minSize < 1 {
		minSize = 1
	}
	var out [][]int
	g.EachMaximalClique(minSize, func(c []int) bool {
		cc := make([]int, len(c))
		copy(cc, c)
		out = append(out, cc)
		return limit < 0 || len(out) < limit
	})
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out
}

// EachMaximalClique calls fn with every maximal clique of size ≥ minSize.
// The slice passed to fn is reused between calls; copy it to retain it.
// Enumeration stops early when fn returns false.
func (g *Graph) EachMaximalClique(minSize int, fn func(clique []int) bool) {
	order, _ := g.DegeneracyOrdering()
	rank := make([]int, len(g.adj))
	for i, u := range order {
		rank[u] = i
	}
	e := &bkEnum{g: g, minSize: minSize, fn: fn}
	for _, u := range order {
		if e.stopped {
			return
		}
		var p, x []int
		for v := range g.adj[u] {
			if rank[v] > rank[u] {
				p = append(p, v)
			} else {
				x = append(x, v)
			}
		}
		e.r = append(e.r[:0], u)
		e.expand(p, x)
	}
}

type bkEnum struct {
	g       *Graph
	minSize int
	fn      func([]int) bool
	r       []int
	stopped bool
}

func (e *bkEnum) expand(p, x []int) {
	if e.stopped {
		return
	}
	if len(p) == 0 && len(x) == 0 {
		if len(e.r) >= e.minSize {
			c := make([]int, len(e.r))
			copy(c, e.r)
			sort.Ints(c)
			if !e.fn(c) {
				e.stopped = true
			}
		}
		return
	}
	// Pivot: vertex of P ∪ X with the most neighbors in P.
	pivot, best := -1, -1
	for _, cand := range [2][]int{p, x} {
		for _, u := range cand {
			cnt := 0
			for _, v := range p {
				if e.g.HasEdge(u, v) {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, u
			}
		}
	}
	// Iterate over P \ N(pivot).
	cand := make([]int, 0, len(p))
	for _, v := range p {
		if pivot < 0 || !e.g.HasEdge(pivot, v) {
			cand = append(cand, v)
		}
	}
	sort.Ints(cand) // determinism
	pset := make(map[int]bool, len(p))
	for _, v := range p {
		pset[v] = true
	}
	xset := make(map[int]bool, len(x))
	for _, v := range x {
		xset[v] = true
	}
	for _, v := range cand {
		if e.stopped {
			return
		}
		var np, nx []int
		for w := range e.g.adj[v] {
			if pset[w] {
				np = append(np, w)
			} else if xset[w] {
				nx = append(nx, w)
			}
		}
		e.r = append(e.r, v)
		e.expand(np, nx)
		e.r = e.r[:len(e.r)-1]
		delete(pset, v)
		xset[v] = true
	}
}

// KCliques enumerates all cliques of exactly k nodes (not necessarily
// maximal), as sorted node slices in lexicographic order. If limit ≥ 0,
// enumeration stops after limit cliques. This powers the CFinder
// (k-clique percolation) baseline.
func (g *Graph) KCliques(k, limit int) [][]int {
	if k < 1 {
		return nil
	}
	var out [][]int
	cur := make([]int, 0, k)
	// rec extends cur with nodes from cands (all adjacent to every node in
	// cur, all larger than the last node of cur). Returns false to stop.
	var rec func(cands []int) bool
	rec = func(cands []int) bool {
		if len(cur) == k {
			c := make([]int, k)
			copy(c, cur)
			out = append(out, c)
			return limit < 0 || len(out) < limit
		}
		for i, v := range cands {
			if len(cands)-i < k-len(cur) {
				return true // not enough candidates remain
			}
			cur = append(cur, v)
			var next []int
			for _, w := range cands[i+1:] {
				if g.HasEdge(v, w) {
					next = append(next, w)
				}
			}
			ok := rec(next)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	all := make([]int, 0, len(g.adj))
	for u := 0; u < len(g.adj); u++ {
		if len(g.adj[u]) >= k-1 {
			all = append(all, u)
		}
	}
	rec(all)
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
