package graph

// KCoreNumbers returns the core number of every node: the largest k such
// that the node belongs to a subgraph in which every node has degree ≥ k.
// Computed from the degeneracy ordering in O(|V| + |E|).
func (g *Graph) KCoreNumbers() []int {
	n := len(g.nbrs)
	core := make([]int, n)
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = len(g.nbrs[u])
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], u)
	}
	removed := make([]bool, n)
	cur := 0
	for processed := 0; processed < n; {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		u := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[u] || deg[u] > cur {
			// Stale entry: the node was re-bucketed at a lower degree.
			continue
		}
		removed[u] = true
		core[u] = cur
		processed++
		for _, v := range g.nbrs[u] {
			if !removed[v] && deg[v] > cur {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], int(v))
			}
		}
	}
	return core
}

// ClusteringCoefficient returns the local clustering coefficient of u: the
// fraction of neighbor pairs that are themselves connected. Nodes with
// fewer than two neighbors have coefficient 0.
func (g *Graph) ClusteringCoefficient(u int) float64 {
	g.check(u)
	nb := g.nbrs[u]
	if len(nb) < 2 {
		return 0
	}
	links := 0
	for i, v := range nb {
		for _, w := range nb[i+1:] {
			if g.HasEdge(int(v), int(w)) {
				links++
			}
		}
	}
	pairs := len(nb) * (len(nb) - 1) / 2
	return float64(links) / float64(pairs)
}

// AverageClusteringCoefficient returns the mean local clustering
// coefficient over nodes with degree ≥ 2 (0 if there are none).
func (g *Graph) AverageClusteringCoefficient() float64 {
	sum, n := 0.0, 0
	for u := 0; u < len(g.nbrs); u++ {
		if len(g.nbrs[u]) < 2 {
			continue
		}
		sum += g.ClusteringCoefficient(u)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BFSDistances returns the hop distance from src to every node, with −1
// for unreachable nodes.
func (g *Graph) BFSDistances(src int) []int {
	g.check(src)
	dist := make([]int, len(g.nbrs))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.nbrs[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// Density returns the edge density |E| / C(|V|, 2) (0 for graphs with
// fewer than two nodes).
func (g *Graph) Density() float64 {
	n := len(g.nbrs)
	if n < 2 {
		return 0
	}
	return float64(g.NumEdges()) / (float64(n) * float64(n-1) / 2)
}
