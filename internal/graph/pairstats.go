package graph

// PairScratch holds the reusable state of CliquePairStats. One scratch per
// worker; not safe for concurrent use. The zero value is ready to use.
type PairScratch struct {
	// Node-indexed working arrays, grown to the graph size on demand and
	// cleaned up after every call via the touched/member lists.
	cnt       []int32 // entries per common-neighbor candidate z
	off       []int32 // CSR offsets per z during the fill pass
	memberIdx []int32 // node id → clique index, -1 otherwise
	touched   []int32 // z's seen this call, for O(touched) cleanup

	members []int32 // CSR payload: clique index of each (member, z) entry
	weights []int32 // CSR payload: ω(member, z)
	acc     []int   // |Q|×|Q| upper-triangle MHH accumulator

	omega, mhh []int // result buffers handed to the caller
}

// grow ensures the node-indexed arrays cover n nodes.
func (s *PairScratch) grow(n int) {
	if len(s.cnt) < n {
		s.cnt = make([]int32, n)
		s.off = make([]int32, n)
		s.memberIdx = make([]int32, n)
		for i := range s.memberIdx {
			s.memberIdx[i] = -1
		}
	}
}

// CliquePairStats returns, for every pair (q[i], q[j]) with i < j in the
// order (0,1), (0,2), …, (1,2), …, the edge multiplicity ω and the MHH
// bound SumMinCommonWeight — the two edge-level quantities of the MARIOH
// featurizer — computed for all pairs in a single sweep over the members'
// neighbor lists instead of one sorted merge per pair.
//
// The sweep is common-neighbor-centric: every node z adjacent to ≥ 2 clique
// members contributes min(ω(u,z), ω(v,z)) to each such pair (u,v), so the
// work is proportional to Σ_u deg(u) plus the actual intersection mass,
// not to |Q|² merges of full hub adjacency lists. Results are identical to
// calling Weight and SumMinCommonWeight per pair.
//
// Both returned slices are owned by the scratch and valid until the next
// call.
func (g *Graph) CliquePairStats(q []int, s *PairScratch) (omega, mhh []int) {
	m := len(q)
	nPairs := m * (m - 1) / 2
	if cap(s.omega) < nPairs {
		s.omega = make([]int, 0, nPairs)
		s.mhh = make([]int, 0, nPairs)
	}
	s.omega, s.mhh = s.omega[:0], s.mhh[:0]
	if m < 2 {
		return s.omega, s.mhh
	}
	// Tiny cliques: two sorted merges beat setting up the sweep.
	if m == 2 {
		s.omega = append(s.omega, g.Weight(q[0], q[1]))
		s.mhh = append(s.mhh, g.SumMinCommonWeight(q[0], q[1]))
		return s.omega, s.mhh
	}
	for _, u := range q {
		g.check(u)
	}
	s.grow(len(g.nbrs))

	if cap(s.acc) < m*m {
		s.acc = make([]int, m*m)
	}
	acc := s.acc[:m*m]
	for i := range acc {
		acc[i] = 0
	}
	for i, u := range q {
		s.memberIdx[u] = int32(i)
	}
	// Pass 1: count, per candidate z, how many clique members it neighbors.
	s.touched = s.touched[:0]
	total := 0
	for _, u := range q {
		for _, z := range g.nbrs[u] {
			if s.cnt[z] == 0 {
				s.touched = append(s.touched, z)
			}
			s.cnt[z]++
			total++
		}
	}
	// Prefix offsets over touched candidates.
	sum := int32(0)
	for _, z := range s.touched {
		s.off[z] = sum
		sum += s.cnt[z]
	}
	if cap(s.members) < total {
		s.members = make([]int32, total)
		s.weights = make([]int32, total)
	}
	members, weights := s.members[:total], s.weights[:total]
	// Pass 2: fill the CSR blocks and capture pair multiplicities ω when a
	// neighbor is itself a clique member.
	omegaAcc := acc // reuse layout: ω goes to [j][i] (lower triangle), MHH to [i][j]
	for i, u := range q {
		ws := g.wts[u]
		for k, z := range g.nbrs[u] {
			idx := s.off[z]
			members[idx] = int32(i)
			weights[idx] = ws[k]
			s.off[z] = idx + 1
			if j := s.memberIdx[z]; j > int32(i) {
				omegaAcc[int(j)*m+i] = int(ws[k])
			}
		}
	}
	// Accumulate min-weight contributions per candidate block. Entries in a
	// block are in ascending member order because pass 2 walks members in
	// order, so a < b below indexes the upper triangle directly.
	end := int32(0)
	for _, z := range s.touched {
		start := end
		end = s.off[z]
		if end-start < 2 {
			continue
		}
		blockM := members[start:end]
		blockW := weights[start:end]
		for a := 0; a < len(blockM); a++ {
			ia := int(blockM[a]) * m
			wa := blockW[a]
			for b := a + 1; b < len(blockM); b++ {
				wmin := wa
				if blockW[b] < wmin {
					wmin = blockW[b]
				}
				acc[ia+int(blockM[b])] += int(wmin)
			}
		}
	}
	// Emit in pair order and clean up the node-indexed arrays.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			s.omega = append(s.omega, omegaAcc[j*m+i])
			s.mhh = append(s.mhh, acc[i*m+j])
		}
	}
	for _, z := range s.touched {
		s.cnt[z] = 0
	}
	for _, u := range q {
		s.memberIdx[u] = -1
	}
	return s.omega, s.mhh
}
