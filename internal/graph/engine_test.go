package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// refGraph is a map-backed reference implementation of the adjacency
// semantics, used to property-test the sorted-slice + bitset engine.
type refGraph struct {
	adj []map[int]int
}

func newRef(n int) *refGraph {
	return &refGraph{adj: make([]map[int]int, n)}
}

func (r *refGraph) ensure(n int) {
	for len(r.adj) < n {
		r.adj = append(r.adj, nil)
	}
}

func (r *refGraph) addWeight(u, v, delta int) {
	if r.adj[u] == nil {
		r.adj[u] = map[int]int{}
	}
	if r.adj[v] == nil {
		r.adj[v] = map[int]int{}
	}
	nw := r.adj[u][v] + delta
	if nw == 0 {
		delete(r.adj[u], v)
		delete(r.adj[v], u)
	} else {
		r.adj[u][v] = nw
		r.adj[v][u] = nw
	}
}

func (r *refGraph) weight(u, v int) int { return r.adj[u][v] }

func (r *refGraph) sumMin(u, v int) int {
	s := 0
	for z, wa := range r.adj[u] {
		if z == u || z == v {
			continue
		}
		if wb, ok := r.adj[v][z]; ok {
			if wa < wb {
				s += wa
			} else {
				s += wb
			}
		}
	}
	return s
}

// TestEngineMatchesMapReference drives the hybrid engine and a map-backed
// reference through the same random mutation sequence — including hub nodes
// that cross the bitset-row threshold in both directions and EnsureNodes
// growth — and checks every read primitive agrees.
func TestEngineMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 80
	g := New(n)
	ref := newRef(n)

	// A designated hub so the bitset threshold (64 at this size) is crossed
	// and re-crossed as edges are added and removed.
	const hub = 0
	for step := 0; step < 6000; step++ {
		if step == 2000 {
			// Grow the node set mid-run: existing bitset rows must widen.
			n = 140
			g.EnsureNodes(n)
			ref.ensure(n)
		}
		var u, v int
		switch step % 4 {
		case 0, 1: // hub edge: drives the degree past the threshold
			u = hub
			v = 1 + rng.Intn(n-1)
		default:
			u = rng.Intn(n)
			v = rng.Intn(n)
			if u == v {
				continue
			}
		}
		switch rng.Intn(5) {
		case 0: // remove
			if w := g.Weight(u, v); w > 0 {
				g.RemoveEdge(u, v)
				ref.addWeight(u, v, -w)
			}
		case 1: // decrement
			if g.Weight(u, v) > 0 {
				g.AddWeight(u, v, -1)
				ref.addWeight(u, v, -1)
			}
		default: // add
			d := 1 + rng.Intn(3)
			g.AddWeight(u, v, d)
			ref.addWeight(u, v, d)
		}
	}

	if g.Degree(hub) < bitsetDegThreshold(n) {
		t.Fatalf("test did not push the hub (deg %d) past the bitset threshold %d",
			g.Degree(hub), bitsetDegThreshold(n))
	}
	if g.bits[hub] == nil {
		t.Fatal("hub has no bitset row despite super-threshold degree")
	}

	// Every pair: HasEdge, Weight, intersection primitives.
	totalW, numE := 0, 0
	for u := 0; u < n; u++ {
		wantDeg, wantWDeg := len(ref.adj[u]), 0
		for _, w := range ref.adj[u] {
			wantWDeg += w
		}
		if g.Degree(u) != wantDeg || g.WeightedDegree(u) != wantWDeg {
			t.Fatalf("node %d: degree %d/%d weighted %d/%d",
				u, g.Degree(u), wantDeg, g.WeightedDegree(u), wantWDeg)
		}
		for v := u + 1; v < n; v++ {
			want := ref.weight(u, v)
			if got := g.Weight(u, v); got != want {
				t.Fatalf("Weight(%d,%d) = %d, want %d", u, v, got, want)
			}
			if got := g.HasEdge(u, v); got != (want > 0) {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, got, want > 0)
			}
			if want > 0 {
				totalW += want
				numE++
			}
			if got, want := g.SumMinCommonWeight(u, v), ref.sumMin(u, v); got != want {
				t.Fatalf("SumMinCommonWeight(%d,%d) = %d, want %d", u, v, got, want)
			}
			cn := g.CommonNeighbors(u, v)
			if got := g.CountCommonNeighbors(u, v); got != len(cn) {
				t.Fatalf("CountCommonNeighbors(%d,%d) = %d, want %d", u, v, got, len(cn))
			}
			for _, z := range cn {
				if ref.weight(u, z) == 0 || ref.weight(v, z) == 0 {
					t.Fatalf("CommonNeighbors(%d,%d) contains non-common %d", u, v, z)
				}
			}
		}
	}
	if g.NumEdges() != numE || g.TotalWeight() != totalW {
		t.Fatalf("counters: edges %d/%d weight %d/%d", g.NumEdges(), numE, g.TotalWeight(), totalW)
	}
}

// TestBitsetRowLifecycle pins the promote/demote hysteresis: a row appears
// at the threshold, survives down to threshold/2, and HasEdge stays correct
// throughout.
func TestBitsetRowLifecycle(t *testing.T) {
	n := 200
	g := New(n)
	th := bitsetDegThreshold(n)
	for v := 1; v <= th; v++ {
		g.AddWeight(0, v, 1)
	}
	if g.bits[0] == nil {
		t.Fatalf("no bitset row at degree %d (threshold %d)", g.Degree(0), th)
	}
	for v := 1; v <= th; v++ {
		if !g.HasEdge(0, v) || !g.HasEdge(v, 0) {
			t.Fatalf("edge {0,%d} lost after promotion", v)
		}
	}
	// Remove edges until the degree falls below the demotion point: the
	// row must survive down to th/2 and then be dropped.
	for v := th; g.Degree(0) >= th/2; v-- {
		if g.Degree(0) > th/2 && g.bits[0] == nil {
			t.Fatalf("row dropped early at degree %d (drop point %d)", g.Degree(0), th/2)
		}
		g.RemoveEdge(0, v)
	}
	if g.bits[0] != nil {
		t.Fatalf("row not dropped at degree %d (drop point %d)", g.Degree(0), th/2)
	}
	for v := 1; v < th/2; v++ {
		if !g.HasEdge(0, v) {
			t.Fatalf("edge {0,%d} lost after demotion", v)
		}
	}
}

// TestEnsureNodesWidensBitsetRows: growing the node set must widen existing
// dense rows so edges to the new nodes are representable.
func TestEnsureNodesWidensBitsetRows(t *testing.T) {
	g := New(100)
	for v := 1; v <= 70; v++ {
		g.AddWeight(0, v, 1)
	}
	if g.bits[0] == nil {
		t.Fatal("expected a bitset row on the hub")
	}
	g.EnsureNodes(500)
	g.AddWeight(0, 400, 2)
	if !g.HasEdge(0, 400) || !g.HasEdge(400, 0) || g.Weight(0, 400) != 2 {
		t.Fatal("edge to post-growth node broken")
	}
	if g.HasEdge(0, 499) {
		t.Fatal("phantom edge to post-growth node")
	}
}

// TestCliquePairStatsMatchesPairwise: the one-sweep pair statistics must
// equal the per-pair Weight / SumMinCommonWeight primitives on random
// graphs, for maximal cliques and for arbitrary (non-clique) node sets.
func TestCliquePairStatsMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ps PairScratch
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(30)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddWeight(i, j, 1+rng.Intn(4))
				}
			}
		}
		sets := g.MaximalCliques(2)
		// Arbitrary node subsets exercise the ω=0 (non-edge) path.
		for k := 0; k < 5; k++ {
			size := 2 + rng.Intn(5)
			set := rng.Perm(n)[:size]
			sets = append(sets, set)
		}
		for _, q := range sets {
			omega, mhh := g.CliquePairStats(q, &ps)
			p := 0
			for i := 0; i < len(q); i++ {
				for j := i + 1; j < len(q); j++ {
					if want := g.Weight(q[i], q[j]); omega[p] != want {
						t.Fatalf("trial %d q=%v pair (%d,%d): ω %d, want %d",
							trial, q, q[i], q[j], omega[p], want)
					}
					if want := g.SumMinCommonWeight(q[i], q[j]); mhh[p] != want {
						t.Fatalf("trial %d q=%v pair (%d,%d): MHH %d, want %d",
							trial, q, q[i], q[j], mhh[p], want)
					}
					p++
				}
			}
			if p != len(omega) || p != len(mhh) {
				t.Fatalf("pair count %d, got %d/%d", p, len(omega), len(mhh))
			}
		}
	}
}

// TestMaximalCliquesWithHub exercises the dense-row path of the
// Bron–Kerbosch seed construction (a node above the bitset threshold inside
// a clique neighborhood).
func TestMaximalCliquesWithHub(t *testing.T) {
	n := 120
	g := New(n)
	// Hub adjacent to everyone; nodes 1..5 form a clique among themselves.
	for v := 1; v < n; v++ {
		g.AddWeight(0, v, 1)
	}
	for i := 1; i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	if g.bits[0] == nil {
		t.Fatal("hub should carry a bitset row")
	}
	cliques := g.MaximalCliques(3)
	want := []int{0, 1, 2, 3, 4, 5}
	found := false
	for _, q := range cliques {
		if reflect.DeepEqual(q, want) {
			found = true
		}
		if !g.IsClique(q) {
			t.Fatalf("%v is not a clique", q)
		}
	}
	if !found {
		t.Fatalf("missing hub clique %v in %v", want, cliques)
	}
}

// TestBucketQueueStalePosition forces the defensive linear-scan fallback of
// removeFromBucket by corrupting the tracked position, and checks the queue
// still drains correctly.
func TestBucketQueueStalePosition(t *testing.T) {
	q := newBucketQueue([]int{2, 2, 2, 2})
	// All four nodes sit in bucket 2. Corrupt node 3's tracked position so
	// removal must fall back to scanning.
	q.pos[3] = 0 // actually at index 3
	q.decrease(3)
	if q.deg[3] != 1 {
		t.Fatalf("deg[3] = %d after decrease, want 1", q.deg[3])
	}
	for _, u := range q.buckets[2] {
		if u == 3 {
			t.Fatal("node 3 still in bucket 2 after stale-position removal")
		}
	}
	// A decrease for a node whose stale position points at an empty slot.
	q.pos[2] = 17
	q.decrease(2)
	if q.deg[2] != 1 {
		t.Fatalf("deg[2] = %d after decrease, want 1", q.deg[2])
	}
	// Drain: the two degree-1 nodes first, then the rest; every node once.
	var order []int
	var degs []int
	for {
		u, d, ok := q.popMin()
		if !ok {
			break
		}
		order = append(order, u)
		degs = append(degs, d)
	}
	if len(order) != 4 {
		t.Fatalf("drained %d nodes, want 4: %v", len(order), order)
	}
	seen := map[int]bool{}
	for _, u := range order {
		if seen[u] {
			t.Fatalf("node %d popped twice: %v", u, order)
		}
		seen[u] = true
	}
	if degs[0] != 1 || degs[1] != 1 || degs[2] != 2 || degs[3] != 2 {
		t.Fatalf("pop degrees %v, want [1 1 2 2]", degs)
	}
}

// TestDegeneracyOrderingIsDeterministic: with sorted adjacency the ordering
// must be identical across runs and across clones.
func TestDegeneracyOrderingIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(60)
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u != v {
			g.AddWeight(u, v, 1)
		}
	}
	o1, d1 := g.DegeneracyOrdering()
	o2, d2 := g.Clone().DegeneracyOrdering()
	if d1 != d2 || !reflect.DeepEqual(o1, o2) {
		t.Fatal("degeneracy ordering differs between identical graphs")
	}
}
