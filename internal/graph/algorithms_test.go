package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestKCoreNumbers(t *testing.T) {
	// K4 on {0..3} plus a path 3-4-5: core numbers 3,3,3,3,1,1.
	g := New(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	g.AddWeight(3, 4, 1)
	g.AddWeight(4, 5, 1)
	want := []int{3, 3, 3, 3, 1, 1}
	if got := g.KCoreNumbers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("KCoreNumbers = %v, want %v", got, want)
	}
}

func TestKCoreIsolatedNodes(t *testing.T) {
	g := New(3)
	g.AddWeight(0, 1, 1)
	got := g.KCoreNumbers()
	if got[2] != 0 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("KCoreNumbers = %v", got)
	}
}

// TestKCoreMatchesPeelingDefinition: on random graphs, every node with
// core number ≥ k must survive iterative removal of degree-<k nodes.
func TestKCoreMatchesPeelingDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddWeight(i, j, 1)
				}
			}
		}
		core := g.KCoreNumbers()
		maxCore := 0
		for _, c := range core {
			if c > maxCore {
				maxCore = c
			}
		}
		for k := 1; k <= maxCore; k++ {
			want := peelKCore(g, k)
			for u := 0; u < n; u++ {
				if want[u] != (core[u] >= k) {
					t.Fatalf("trial %d k=%d node %d: peel=%v core=%d",
						trial, k, u, want[u], core[u])
				}
			}
		}
	}
}

// peelKCore returns membership of the k-core by brute-force peeling.
func peelKCore(g *Graph, k int) []bool {
	n := g.NumNodes()
	alive := make([]bool, n)
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		alive[u] = true
		deg[u] = g.Degree(u)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			if alive[u] && deg[u] < k {
				alive[u] = false
				changed = true
				for _, v := range g.Neighbors(u) {
					if alive[v] {
						deg[v]--
					}
				}
			}
		}
	}
	return alive
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: coefficient 1 everywhere; star center: 0.
	g := New(6)
	g.AddWeight(0, 1, 1)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	if c := g.ClusteringCoefficient(0); c != 1 {
		t.Fatalf("triangle node coefficient = %v", c)
	}
	g.AddWeight(3, 4, 1)
	g.AddWeight(3, 5, 1)
	if c := g.ClusteringCoefficient(3); c != 0 {
		t.Fatalf("star center coefficient = %v", c)
	}
	if c := g.ClusteringCoefficient(4); c != 0 {
		t.Fatal("degree-1 node should be 0")
	}
	avg := g.AverageClusteringCoefficient()
	// Nodes with degree ≥ 2: 0,1,2 (coef 1) and 3 (coef 0) → 0.75.
	if math.Abs(avg-0.75) > 1e-12 {
		t.Fatalf("average coefficient = %v, want 0.75", avg)
	}
}

func TestBFSDistances(t *testing.T) {
	g := New(5)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	want := []int{0, 1, 2, 3, -1}
	if got := g.BFSDistances(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFSDistances = %v, want %v", got, want)
	}
}

func TestDensity(t *testing.T) {
	g := New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(2, 3, 1)
	if d := g.Density(); math.Abs(d-2.0/6) > 1e-12 {
		t.Fatalf("Density = %v, want 1/3", d)
	}
	if New(1).Density() != 0 {
		t.Fatal("singleton density must be 0")
	}
}
