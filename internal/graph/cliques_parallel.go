package graph

import (
	"slices"
	"sync"
	"sync/atomic"
)

// MaximalCliquesParallel is MaximalCliquesLimit with the per-seed
// Bron–Kerbosch expansions fanned across a bounded pool of workers. The
// result is byte-identical to the serial enumeration for every worker
// count:
//
//   - each seed's expansion is an independent subtree of the search, so a
//     worker enumerating seed i emits exactly the sub-stream the serial
//     pass would emit at position i;
//   - workers write into index-addressed per-seed buckets, never into a
//     shared stream, so scheduling cannot reorder anything;
//   - the buckets are concatenated in seed order, truncated at limit, and
//     sorted lexicographically — reproducing the serial stream (and its
//     exact limit cutoff) regardless of how seeds were interleaved.
//
// A worker cannot know where the global limit falls while earlier seeds
// are still running, so each seed caps its own bucket at limit and the
// concatenation re-applies the exact global cut; with a small limit on a
// graph with many productive seeds this enumerates up to seeds×limit
// cliques where the serial pass stops at limit. The limit path is a
// safety valve for pathological graphs, not the steady state, so the
// bound is acceptable.
//
// workers ≤ 1 (and the degenerate limit == 0, whose cutoff the serial
// stop predicate only applies after the first emission) delegate to the
// serial enumeration.
func (g *Graph) MaximalCliquesParallel(minSize, limit, workers int) [][]int {
	s := g.CliqueSeeds(minSize)
	n := s.NumSeeds()
	if workers > n {
		workers = n
	}
	if workers <= 1 || limit == 0 {
		return g.MaximalCliquesLimit(minSize, limit)
	}
	buckets := make([][][]int, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc CliqueEnum
			var bucket [][]int
			emit := func(c []int) bool {
				cc := make([]int, len(c))
				copy(cc, c)
				bucket = append(bucket, cc)
				return limit < 0 || len(bucket) < limit
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				bucket = nil
				s.EnumSeed(i, &sc, emit)
				buckets[i] = bucket
			}
		}()
	}
	wg.Wait()
	var out [][]int
	for _, b := range buckets {
		if limit >= 0 && len(out)+len(b) >= limit {
			out = append(out, b[:limit-len(out)]...)
			break
		}
		out = append(out, b...)
	}
	slices.SortFunc(out, cmpIntSlice)
	return out
}
