package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the graph as a weighted edge list: "u v w" per line
// with u < v, in sorted order.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%% nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write: an optional "% nodes N" header
// followed by "u v w" lines (w defaults to 1 when omitted). Blank lines and
// "%" comments are skipped.
func Read(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "%") {
			var n int
			if _, err := fmt.Sscanf(text, "%% nodes %d", &n); err == nil {
				g.EnsureNodes(n)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want \"u v [w]\", got %q", lineNo, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[1])
		}
		w := 1
		if len(fields) == 3 {
			w, err = strconv.Atoi(fields[2])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		top := u
		if v > top {
			top = v
		}
		g.EnsureNodes(top + 1)
		g.AddWeight(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
