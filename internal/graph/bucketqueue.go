package graph

// bucketQueue is the monotone bucket priority queue behind
// DegeneracyOrdering: nodes keyed by current degree, O(1) pop-min and
// decrease-key via position tracking. Removal normally finds the node at
// pos[u] in its bucket; if the tracked position is stale it falls back to a
// linear scan of the bucket, so a bookkeeping slip degrades to O(bucket)
// instead of corrupting the ordering.
type bucketQueue struct {
	buckets [][]int
	pos     []int // index of u within buckets[deg[u]]
	deg     []int // current degree key of u
	removed []bool
	cur     int // lowest possibly-non-empty bucket
}

// newBucketQueue builds a queue over nodes 0..len(deg)-1 keyed by deg.
func newBucketQueue(deg []int) *bucketQueue {
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	q := &bucketQueue{
		buckets: make([][]int, maxDeg+1),
		pos:     make([]int, len(deg)),
		deg:     append([]int(nil), deg...),
		removed: make([]bool, len(deg)),
	}
	for u, d := range deg {
		q.pos[u] = len(q.buckets[d])
		q.buckets[d] = append(q.buckets[d], u)
	}
	return q
}

// popMin removes and returns a node of minimum degree together with that
// degree; ok is false once the queue is empty.
func (q *bucketQueue) popMin() (u, d int, ok bool) {
	for q.cur < len(q.buckets) {
		b := q.buckets[q.cur]
		if len(b) == 0 {
			q.cur++
			continue
		}
		u = b[len(b)-1]
		q.buckets[q.cur] = b[:len(b)-1]
		q.removed[u] = true
		return u, q.cur, true
	}
	return 0, 0, false
}

// isRemoved reports whether u was already popped.
func (q *bucketQueue) isRemoved(u int) bool { return q.removed[u] }

// decrease moves u from bucket deg[u] to deg[u]-1.
func (q *bucketQueue) decrease(u int) {
	d := q.deg[u]
	q.removeFromBucket(u, d)
	q.deg[u] = d - 1
	q.pos[u] = len(q.buckets[d-1])
	q.buckets[d-1] = append(q.buckets[d-1], u)
	if d-1 < q.cur {
		q.cur = d - 1
	}
}

// removeFromBucket deletes u from buckets[d], preferring the tracked
// position and falling back to a linear scan when it is stale.
func (q *bucketQueue) removeFromBucket(u, d int) {
	b := q.buckets[d]
	i := q.pos[u]
	if i >= len(b) || b[i] != u {
		// Stale position; find the real one (defensive, O(bucket)).
		i = -1
		for j, w := range b {
			if w == u {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
	}
	last := len(b) - 1
	b[i] = b[last]
	q.pos[b[i]] = i
	q.buckets[d] = b[:last]
}
