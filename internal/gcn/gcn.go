// Package gcn implements the two-layer Graph Convolutional Network used
// by the paper's link-prediction experiment (Table IX) to produce link
// embeddings, from scratch on the linalg substrate.
//
// The architecture follows the paper's setup: one-hot node features, two
// graph-convolution layers with symmetric normalization
// Â = D̃^{−1/2}(A+I)D̃^{−1/2}, ReLU between layers, and a dot-product link
// decoder trained with binary cross-entropy on edges versus sampled
// non-edges. With one-hot inputs the first layer's weight matrix is an
// n×d free embedding table, so the forward pass is
//
//	Z = Â · ReLU(Â · W0) · W1
//
// and a link (u, v) scores σ(z_u · z_v). Training runs full-batch Adam;
// everything is deterministic for a fixed seed.
package gcn

import (
	"math"
	"math/rand"

	"marioh/internal/graph"
	"marioh/internal/linalg"
)

// Model is a trained two-layer GCN link-embedding model.
type Model struct {
	W0, W1 *linalg.Matrix // n×h and h×d parameter matrices
	ahat   *linalg.Sparse
	z      *linalg.Matrix // cached final embeddings
}

// Options configure Train.
type Options struct {
	// Hidden and Out are the two layer widths; defaults 32 and 16.
	Hidden, Out int
	// Epochs of full-batch Adam; default 120.
	Epochs int
	// LR is the Adam step size; default 0.01.
	LR float64
	// NegPerEdge non-edges are sampled per training edge; default 1.
	NegPerEdge int
	Seed       int64
}

func (o *Options) defaults() {
	if o.Hidden <= 0 {
		o.Hidden = 32
	}
	if o.Out <= 0 {
		o.Out = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 120
	}
	if o.LR <= 0 {
		o.LR = 0.01
	}
	if o.NegPerEdge <= 0 {
		o.NegPerEdge = 1
	}
}

// Normalized builds Â = D̃^{−1/2}(A+I)D̃^{−1/2} for a weighted graph.
func Normalized(g *graph.Graph) *linalg.Sparse {
	n := g.NumNodes()
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = 1 // self-loop
		g.NeighborWeights(u, func(_, w int) { deg[u] += float64(w) })
	}
	inv := make([]float64, n)
	for u, d := range deg {
		inv[u] = 1 / math.Sqrt(d)
	}
	var entries []linalg.Triple
	for u := 0; u < n; u++ {
		entries = append(entries, linalg.Triple{Row: u, Col: u, Val: inv[u] * inv[u]})
		g.NeighborWeights(u, func(v, w int) {
			entries = append(entries, linalg.Triple{Row: u, Col: v, Val: float64(w) * inv[u] * inv[v]})
		})
	}
	return linalg.NewSparseFromTriples(n, n, entries)
}

// Train fits the GCN on g's edges against sampled non-edges and returns a
// model whose Embedding rows are the final node embeddings.
func Train(g *graph.Graph, opts Options) *Model {
	opts.defaults()
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &Model{
		W0:   glorot(n, opts.Hidden, rng),
		W1:   glorot(opts.Hidden, opts.Out, rng),
		ahat: Normalized(g),
	}

	type pair struct {
		u, v  int
		label float64
	}
	var pairs []pair
	for _, e := range g.Edges() {
		pairs = append(pairs, pair{e.U, e.V, 1})
		for k := 0; k < opts.NegPerEdge; k++ {
			for {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b && !g.HasEdge(a, b) {
					pairs = append(pairs, pair{a, b, 0})
					break
				}
			}
		}
	}
	if len(pairs) == 0 {
		m.z = m.forward(nil)
		return m
	}

	ad0 := newAdamState(m.W0)
	ad1 := newAdamState(m.W1)
	for ep := 0; ep < opts.Epochs; ep++ {
		// Forward.
		p := m.ahat.MulDense(m.W0) // n×h
		h1 := p.Clone()
		reluInPlace(h1)
		q := m.ahat.MulDense(h1) // n×h
		z := linalg.Mul(q, m.W1) // n×d

		// Loss gradient w.r.t. Z from the dot-product decoder.
		dz := linalg.NewMatrix(z.Rows, z.Cols)
		for _, pr := range pairs {
			zu, zv := z.Row(pr.u), z.Row(pr.v)
			s := sigmoid(linalg.Dot(zu, zv))
			gscale := s - pr.label
			du, dv := dz.Row(pr.u), dz.Row(pr.v)
			for j := range zu {
				du[j] += gscale * zv[j]
				dv[j] += gscale * zu[j]
			}
		}
		inv := 1 / float64(len(pairs))
		for i := range dz.Data {
			dz.Data[i] *= inv
		}

		// Backward.
		dW1 := linalg.Mul(linalg.Transpose(q), dz)
		dq := linalg.Mul(dz, linalg.Transpose(m.W1))
		dh1 := m.ahat.MulDense(dq) // Âᵀ = Â
		for i := range dh1.Data {
			if p.Data[i] <= 0 {
				dh1.Data[i] = 0
			}
		}
		dW0 := m.ahat.MulDense(dh1)

		ad0.step(m.W0, dW0, opts.LR)
		ad1.step(m.W1, dW1, opts.LR)
	}
	m.z = m.forward(nil)
	return m
}

// forward recomputes the final embeddings from the current weights.
func (m *Model) forward(_ []float64) *linalg.Matrix {
	p := m.ahat.MulDense(m.W0)
	reluInPlace(p)
	q := m.ahat.MulDense(p)
	return linalg.Mul(q, m.W1)
}

// Embedding returns the final embedding of node u (a view; do not modify).
func (m *Model) Embedding(u int) []float64 { return m.z.Row(u) }

// Embeddings returns the n×d embedding matrix (a view; do not modify).
func (m *Model) Embeddings() *linalg.Matrix { return m.z }

// Score returns σ(z_u · z_v), the model's link probability.
func (m *Model) Score(u, v int) float64 {
	return sigmoid(linalg.Dot(m.z.Row(u), m.z.Row(v)))
}

func glorot(in, out int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(in, out)
	scale := math.Sqrt(6 / float64(in+out))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return m
}

func reluInPlace(m *linalg.Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// adamState carries Adam moments for one parameter matrix.
type adamState struct {
	m, v   []float64
	t      int
	b1, b2 float64
}

func newAdamState(p *linalg.Matrix) *adamState {
	return &adamState{
		m: make([]float64, len(p.Data)), v: make([]float64, len(p.Data)),
		b1: 0.9, b2: 0.999,
	}
}

func (a *adamState) step(p, grad *linalg.Matrix, lr float64) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	for i := range p.Data {
		g := grad.Data[i]
		a.m[i] = a.b1*a.m[i] + (1-a.b1)*g
		a.v[i] = a.b2*a.v[i] + (1-a.b2)*g*g
		p.Data[i] -= lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + 1e-8)
	}
}
