package gcn

import (
	"math"
	"testing"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
)

func TestNormalizedRowsSumSensibly(t *testing.T) {
	g := graph.New(3)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	ahat := Normalized(g)
	if ahat.NNZ() != 3+4 { // 3 self-loops + 4 directed edge entries
		t.Fatalf("NNZ = %d", ahat.NNZ())
	}
	// Â must be symmetric.
	vals := map[[2]int]float64{}
	ahat.Each(func(r, c int, v float64) { vals[[2]int{r, c}] = v })
	for rc, v := range vals {
		if w, ok := vals[[2]int{rc[1], rc[0]}]; !ok || math.Abs(v-w) > 1e-12 {
			t.Fatalf("asymmetric at %v: %v vs %v", rc, v, w)
		}
	}
	// Known value: node 0 has degree 1+1 self-loop = 2 → Â[0,0] = 1/2.
	if math.Abs(vals[[2]int{0, 0}]-0.5) > 1e-12 {
		t.Fatalf("Â[0,0] = %v, want 0.5", vals[[2]int{0, 0}])
	}
}

func TestTrainSeparatesCommunities(t *testing.T) {
	// Two 5-cliques joined by one bridge: GCN link scores inside blocks
	// must beat scores across blocks.
	h := hypergraph.New(10)
	h.Add([]int{0, 1, 2, 3, 4})
	h.Add([]int{5, 6, 7, 8, 9})
	g := h.Project()
	g.AddWeight(4, 5, 1)
	m := Train(g, Options{Seed: 1, Epochs: 150})

	intra := m.Score(0, 2) + m.Score(6, 8)
	inter := m.Score(0, 9) + m.Score(1, 7)
	if intra <= inter {
		t.Fatalf("intra %v ≤ inter %v", intra, inter)
	}
	// Known positive edges should score above 0.5 on average.
	avg := 0.0
	edges := g.Edges()
	for _, e := range edges {
		avg += m.Score(e.U, e.V)
	}
	avg /= float64(len(edges))
	if avg < 0.5 {
		t.Fatalf("average edge score %v < 0.5", avg)
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := graph.New(6)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 2)
	g.AddWeight(3, 4, 1)
	g.AddWeight(4, 5, 1)
	a := Train(g, Options{Seed: 7, Epochs: 30})
	b := Train(g, Options{Seed: 7, Epochs: 30})
	for u := 0; u < 6; u++ {
		ea, eb := a.Embedding(u), b.Embedding(u)
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatal("same seed produced different embeddings")
			}
		}
	}
}

func TestEmbeddingShape(t *testing.T) {
	g := graph.New(4)
	g.AddWeight(0, 1, 1)
	m := Train(g, Options{Seed: 1, Epochs: 5, Hidden: 8, Out: 3})
	if e := m.Embeddings(); e.Rows != 4 || e.Cols != 3 {
		t.Fatalf("embedding shape %dx%d", e.Rows, e.Cols)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(3)
	m := Train(g, Options{Seed: 1, Epochs: 5})
	if m.Embeddings().Rows != 3 {
		t.Fatal("embeddings missing for isolated nodes")
	}
}

func TestSparseMulDenseAgainstDense(t *testing.T) {
	entries := []linalg.Triple{
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 0, Val: 3},
		{Row: 1, Col: 1, Val: -1},
		{Row: 0, Col: 1, Val: 1}, // duplicate of (0,1): sums to 3
	}
	s := NewTestSparse(2, 2, entries)
	d := linalg.NewMatrix(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, 1)
	got := s.MulDense(d)
	if got.At(0, 1) != 3 || got.At(1, 0) != 3 || got.At(1, 1) != -1 {
		t.Fatalf("sparse mul wrong: %+v", got.Data)
	}
}

// NewTestSparse re-exports the constructor for the sparse test above.
func NewTestSparse(r, c int, e []linalg.Triple) *linalg.Sparse {
	return linalg.NewSparseFromTriples(r, c, e)
}
