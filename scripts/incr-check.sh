#!/usr/bin/env bash
# Incremental/serial equivalence matrix (run by `make incr-check` and the
# CI incremental-equivalence job): for each bundled dataset, generate a
# reproducible edge-delta stream, then
#
#   1. materialize the mutated graph and produce from-scratch golden
#      reconstructions of it — serial and with -shards 1/4/16, all of
#      which must be byte-identical to each other
#   2. replay the delta stream through an incremental session in batches,
#      with -verify re-running a from-scratch rebuild after EVERY batch
#      and failing unless the session output matches byte for byte
#   3. cmp the session's final output against the serial golden
#
# The live-daemon mirror of this check runs in scripts/smoke.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build"
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

for ds in hosts pschool; do
    echo "== $ds"
    "$bin/datagen" -dataset "$ds" -seed 1 -reduced -deltas 60 -out "$work"
    "$bin/mariohctl" train -train "$work/$ds.source.hg" -seed 1 -epochs 15 -out "$work/$ds.model.json"

    echo "   golden: full rebuild of the mutated graph (serial + shards 1/4/16)"
    "$bin/mariohctl" mutate -graph "$work/$ds.target.graph" -deltas "$work/$ds.target.deltas" \
        -out "$work/$ds.mutated.graph"
    "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.mutated.graph" \
        -seed 1 -out "$work/$ds.golden.hg"
    for n in 1 4 16; do
        "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.mutated.graph" \
            -seed 1 -shards "$n" -shard-target 8 -out "$work/$ds.golden.shard$n.hg"
        cmp "$work/$ds.golden.hg" "$work/$ds.golden.shard$n.hg"
    done

    echo "   session: replay deltas in batches of 20 with per-batch verification"
    "$bin/mariohctl" session -model "$work/$ds.model.json" -graph "$work/$ds.target.graph" \
        -deltas "$work/$ds.target.deltas" -batch 20 -verify -seed 1 -out "$work/$ds.session.hg"
    cmp "$work/$ds.golden.hg" "$work/$ds.session.hg"
    echo "   session final state is byte-identical to the from-scratch golden"
done

echo "== incremental speedup floor (>= 5x at <= 10% dirty components)"
go test -run TestIncrementalSessionSpeedup -count=1 .

echo "incr-check ok"
