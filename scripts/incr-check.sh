#!/usr/bin/env bash
# Incremental/serial equivalence matrix (run by `make incr-check` and the
# CI incremental-equivalence job): for each bundled dataset — and then for
# a slate of scenario-corpus families whose delta streams are engineered
# to be adversarial (hub promote/demote thrash, bridge cuts, component
# merge/split storms, exact structural reverts) — generate a reproducible
# edge-delta stream, then
#
#   1. materialize the mutated graph and produce from-scratch golden
#      reconstructions of it — serial and with -shards 1/4/16, all of
#      which must be byte-identical to each other
#   2. replay the delta stream through an incremental session in batches,
#      with -verify re-running a from-scratch rebuild after EVERY batch
#      and failing unless the session output matches byte for byte
#   3. cmp the session's final output against the serial golden
#
# SEED overrides the generation/reconstruction seed (default 1); the
# nightly job rotates it.
#
# The live-daemon mirror of this check runs in scripts/smoke.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build (SEED=$SEED)"
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

# check <name> <model> runs the full matrix over $work/<name>.target.graph
# and $work/<name>.target.deltas.
check() {
    local name="$1" model="$2"
    echo "   golden: full rebuild of the mutated graph (serial + shards 1/4/16)"
    "$bin/mariohctl" mutate -graph "$work/$name.target.graph" -deltas "$work/$name.target.deltas" \
        -out "$work/$name.mutated.graph"
    "$bin/mariohctl" apply -model "$model" -target "$work/$name.mutated.graph" \
        -seed "$SEED" -out "$work/$name.golden.hg"
    for n in 1 4 16; do
        "$bin/mariohctl" apply -model "$model" -target "$work/$name.mutated.graph" \
            -seed "$SEED" -shards "$n" -shard-target 8 -out "$work/$name.golden.shard$n.hg"
        cmp "$work/$name.golden.hg" "$work/$name.golden.shard$n.hg"
    done

    echo "   session: replay deltas in batches of 20 with per-batch verification"
    "$bin/mariohctl" session -model "$model" -graph "$work/$name.target.graph" \
        -deltas "$work/$name.target.deltas" -batch 20 -verify -seed "$SEED" -out "$work/$name.session.hg"
    cmp "$work/$name.golden.hg" "$work/$name.session.hg"
    echo "   session final state is byte-identical to the from-scratch golden"
}

for ds in hosts pschool; do
    echo "== $ds"
    "$bin/datagen" -dataset "$ds" -seed "$SEED" -reduced -deltas 60 -delta-seed "$SEED" -out "$work"
    "$bin/mariohctl" train -train "$work/$ds.source.hg" -seed "$SEED" -epochs 15 -out "$work/$ds.model.json"
    check "$ds" "$work/$ds.model.json"
done

# Corpus families reuse the hosts-trained model (byte-equivalence is
# model-agnostic); their delta streams derive from -seed alone.
for fam in powerlaw-hubs bridge-chain merge-split-churn revert-cycles; do
    echo "== corpus/$fam"
    "$bin/datagen" -family "$fam" -seed "$SEED" -deltas 60 -out "$work"
    check "$fam" "$work/hosts.model.json"
done

echo "== incremental speedup floor (>= 5x at <= 10% dirty components)"
go test -run TestIncrementalSessionSpeedup -count=1 .

echo "incr-check ok"
