#!/usr/bin/env bash
# Crash-recovery gate (run by `make crash-check` and the CI crash-recovery
# job): replay a delta stream through a durable on-disk session, SIGKILL
# the process at a randomized point mid-replay, resume the session from
# its WAL + snapshots, finish the stream, and require the recovered output
# to be byte-identical to a from-scratch serial reconstruction of the
# fully-mutated graph. Three trials land the kill at different offsets
# (including, sometimes, after the replay finished — resume must be a
# clean no-op then too). A fourth trial mirrors the gate over the
# bridge-chain scenario-corpus family, whose bridge-cut deltas split and
# re-merge components mid-stream.
#
# SEED overrides the generation/reconstruction seed (default 1); the
# nightly job rotates it.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build (SEED=$SEED)"
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

# trial <label> <graph> <deltas> <golden>: SIGKILL mid-replay, resume,
# compare the recovered output against the from-scratch golden.
trial() {
    local label="$1" graph="$2" deltas="$3" golden="$4"
    local sess="$work/sess-$label"
    echo "== trial $label: SIGKILL mid-replay, resume, compare"
    "$bin/mariohctl" session -model "$work/model.json" -graph "$graph" \
        -deltas "$deltas" -batch 2 -dir "$sess" -seed "$SEED" \
        -out "$work/out-$label.hg" >"$work/run-$label.log" 2>&1 &
    local pid=$!
    sleep "$(printf '0.%02d' $((RANDOM % 15 + 5)))"
    if kill -9 "$pid" 2>/dev/null; then
        echo "   killed the replay"
    else
        echo "   replay finished before the kill landed (resume must no-op)"
    fi
    wait "$pid" 2>/dev/null || true
    "$bin/mariohctl" session -model "$work/model.json" -deltas "$deltas" \
        -batch 2 -dir "$sess" -resume -seed "$SEED" -out "$work/out-$label.hg" | sed 's/^/   /'
    cmp "$golden" "$work/out-$label.hg"
    echo "   recovered output is byte-identical to the serial golden"
}

echo "== golden: from-scratch serial rebuild of the mutated graph"
"$bin/datagen" -dataset hosts -seed "$SEED" -reduced -deltas 120 -delta-seed "$SEED" -out "$work"
"$bin/mariohctl" train -train "$work/hosts.source.hg" -seed "$SEED" -epochs 15 -out "$work/model.json"
"$bin/mariohctl" mutate -graph "$work/hosts.target.graph" -deltas "$work/hosts.target.deltas" \
    -out "$work/hosts.mutated.graph"
"$bin/mariohctl" apply -model "$work/model.json" -target "$work/hosts.mutated.graph" \
    -seed "$SEED" -out "$work/golden.hg"

for t in 1 2 3; do
    trial "$t" "$work/hosts.target.graph" "$work/hosts.target.deltas" "$work/golden.hg"
done

echo "== golden: corpus/bridge-chain (reuses the hosts-trained model)"
"$bin/datagen" -family bridge-chain -seed "$SEED" -deltas 120 -out "$work"
"$bin/mariohctl" mutate -graph "$work/bridge-chain.target.graph" \
    -deltas "$work/bridge-chain.target.deltas" -out "$work/bridge-chain.mutated.graph"
"$bin/mariohctl" apply -model "$work/model.json" -target "$work/bridge-chain.mutated.graph" \
    -seed "$SEED" -out "$work/golden-bc.hg"
trial "bridge-chain" "$work/bridge-chain.target.graph" "$work/bridge-chain.target.deltas" "$work/golden-bc.hg"

echo "crash-check ok"
