#!/usr/bin/env bash
# Crash-recovery gate (run by `make crash-check` and the CI crash-recovery
# job): replay a delta stream through a durable on-disk session, SIGKILL
# the process at a randomized point mid-replay, resume the session from
# its WAL + snapshots, finish the stream, and require the recovered output
# to be byte-identical to a from-scratch serial reconstruction of the
# fully-mutated graph. Three trials land the kill at different offsets
# (including, sometimes, after the replay finished — resume must be a
# clean no-op then too).
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build"
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

echo "== golden: from-scratch serial rebuild of the mutated graph"
"$bin/datagen" -dataset hosts -seed 1 -reduced -deltas 120 -out "$work"
"$bin/mariohctl" train -train "$work/hosts.source.hg" -seed 1 -epochs 15 -out "$work/model.json"
"$bin/mariohctl" mutate -graph "$work/hosts.target.graph" -deltas "$work/hosts.target.deltas" \
    -out "$work/hosts.mutated.graph"
"$bin/mariohctl" apply -model "$work/model.json" -target "$work/hosts.mutated.graph" \
    -seed 1 -out "$work/golden.hg"

for trial in 1 2 3; do
    sess="$work/sess$trial"
    echo "== trial $trial: SIGKILL mid-replay, resume, compare"
    "$bin/mariohctl" session -model "$work/model.json" -graph "$work/hosts.target.graph" \
        -deltas "$work/hosts.target.deltas" -batch 2 -dir "$sess" -seed 1 \
        -out "$work/out$trial.hg" >"$work/run$trial.log" 2>&1 &
    pid=$!
    sleep "$(printf '0.%02d' $((RANDOM % 15 + 5)))"
    if kill -9 "$pid" 2>/dev/null; then
        echo "   killed the replay"
    else
        echo "   replay finished before the kill landed (resume must no-op)"
    fi
    wait "$pid" 2>/dev/null || true
    "$bin/mariohctl" session -model "$work/model.json" -deltas "$work/hosts.target.deltas" \
        -batch 2 -dir "$sess" -resume -seed 1 -out "$work/out$trial.hg" | sed 's/^/   /'
    cmp "$work/golden.hg" "$work/out$trial.hg"
    echo "   recovered output is byte-identical to the serial golden"
done

echo "crash-check ok"
