#!/usr/bin/env bash
# Multi-tenant serving smoke (run by `make load-check` and the CI
# serving-load job): drive an in-process mariohd with concurrent
# reconstructions and session churn spread over several tenants via
# cmd/loadgen, under a retained-memory budget. The run fails unless
#
#   1. every served body is byte-identical to the serial single-process
#      library reconstruction (loadgen always enforces this),
#   2. no request is answered 5xx,
#   3. the content-addressed dedup cache collapsed duplicate work
#      (dedup hits > 0 — 200 requests over 8 shapes must collapse), and
#   4. the daemon's RSS stays under the harness bound.
#
# The latency summary lands in BENCH_<date>-loadgen.json form at
# $work/loadgen.json; compare serving recordings explicitly with
# `benchdiff -against BENCH_<date>-loadgen.json` (latest-selection skips
# them so they never become the substrate baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${REQUESTS:-200}"
CONCURRENCY="${CONCURRENCY:-16}"
MAX_RSS="${MAX_RSS:-2147483648}" # 2 GiB

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== loadgen ($REQUESTS requests, $CONCURRENCY workers, 4 tenants, RSS <= $MAX_RSS)"
go run ./cmd/loadgen \
    -requests "$REQUESTS" -concurrency "$CONCURRENCY" \
    -tenants 4 -unique 8 -sessions 8 \
    -memory-budget $((256 * 1024 * 1024)) \
    -require-dedup -fail-on-5xx -max-rss "$MAX_RSS" \
    -note "load-check smoke" \
    -out "$work/loadgen.json"

echo "== summary"
grep -E '"(dedup_hits|errors_5xx|byte_mismatches|rss_bytes)"' "$work/loadgen.json"

echo "load-check ok"
