#!/usr/bin/env bash
# Shard/serial equivalence matrix (run by `make shard-check` and the CI
# shard-equivalence job): for each bundled dataset, train once, produce a
# serial golden reconstruction, then reconstruct with -shards 1/4/16 (with
# a tiny -shard-target so oversized components really get bridge-split)
# and require every output to be byte-identical to the golden. The same
# matrix then runs over scenario-corpus families (datagen -family), whose
# shapes — dense hubs, bridge chains, overlapping cliques, island
# archipelagos — stress the partitioner harder than the bundled datasets.
#
# SEED overrides the generation/reconstruction seed (default 1); the
# nightly job rotates it.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build (SEED=$SEED)"
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

for ds in hosts pschool; do
    echo "== $ds"
    "$bin/mariohctl" gen -dataset "$ds" -seed "$SEED" -out "$work"
    "$bin/mariohctl" train -train "$work/$ds.source.hg" -seed "$SEED" -epochs 15 -out "$work/$ds.model.json"
    "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.target.graph" \
        -seed "$SEED" -out "$work/$ds.golden.hg"
    for n in 1 4 16; do
        "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.target.graph" \
            -seed "$SEED" -shards "$n" -shard-target 8 -out "$work/$ds.shard$n.hg"
        cmp "$work/$ds.golden.hg" "$work/$ds.shard$n.hg"
        echo "   -shards $n is byte-identical to the serial golden"
    done
done

# Corpus families have no source hypergraph of their own; byte-equivalence
# is model-agnostic, so they reuse the hosts-trained model from above.
for fam in powerlaw-hubs bridge-chain clique-cores archipelago; do
    echo "== corpus/$fam"
    "$bin/datagen" -family "$fam" -seed "$SEED" -out "$work"
    "$bin/mariohctl" apply -model "$work/hosts.model.json" -target "$work/$fam.target.graph" \
        -seed "$SEED" -out "$work/$fam.golden.hg"
    for n in 1 4 16; do
        "$bin/mariohctl" apply -model "$work/hosts.model.json" -target "$work/$fam.target.graph" \
            -seed "$SEED" -shards "$n" -shard-target 8 -out "$work/$fam.shard$n.hg"
        cmp "$work/$fam.golden.hg" "$work/$fam.shard$n.hg"
        echo "   -shards $n is byte-identical to the serial golden"
    done
done
echo "shard-check ok"
