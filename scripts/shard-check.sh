#!/usr/bin/env bash
# Shard/serial equivalence matrix (run by `make shard-check` and the CI
# shard-equivalence job): for each bundled dataset, train once, produce a
# serial golden reconstruction, then reconstruct with -shards 1/4/16 (with
# a tiny -shard-target so oversized components really get bridge-split)
# and require every output to be byte-identical to the golden.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
work=$(mktemp -d)
trap 'rm -rf "$bin" "$work"' EXIT

echo "== build"
go build -o "$bin/mariohctl" ./cmd/mariohctl

for ds in hosts pschool; do
    echo "== $ds"
    "$bin/mariohctl" gen -dataset "$ds" -seed 1 -out "$work"
    "$bin/mariohctl" train -train "$work/$ds.source.hg" -seed 1 -epochs 15 -out "$work/$ds.model.json"
    "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.target.graph" \
        -seed 1 -out "$work/$ds.golden.hg"
    for n in 1 4 16; do
        "$bin/mariohctl" apply -model "$work/$ds.model.json" -target "$work/$ds.target.graph" \
            -seed 1 -shards "$n" -shard-target 8 -out "$work/$ds.shard$n.hg"
        cmp "$work/$ds.golden.hg" "$work/$ds.shard$n.hg"
        echo "   -shards $n is byte-identical to the serial golden"
    done
done
echo "shard-check ok"
