#!/usr/bin/env bash
# End-to-end smoke test of the mariohd daemon (run by `make smoke` and the
# CI server-smoke job):
#
#   1. build mariohd + mariohctl
#   2. produce a golden reconstruction through the CLI (library path)
#   3. boot mariohd on a random port, poll /healthz
#   4. push the model and reconstruct the same target through the server;
#      the output must be byte-identical to the golden run
#   5. reconstruct again with -shards 4 (fanning shards onto the server's
#      job queue): still byte-identical, and the shard counters move
#   6. replay a delta stream through a durable server-side session, then
#      kill -9 the daemon, restart it over the same -data-dir, resume the
#      session and require byte-identical output (WAL crash recovery)
#   7. SIGTERM the daemon with a job in flight: it must drain and exit 0
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$bin" "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/mariohd" ./cmd/mariohd
go build -o "$bin/mariohctl" ./cmd/mariohctl
go build -o "$bin/datagen" ./cmd/datagen

echo "== golden run (CLI / library path)"
"$bin/mariohctl" gen -dataset hosts -seed 1 -out "$work"
"$bin/mariohctl" train -train "$work/hosts.source.hg" -seed 1 -epochs 15 -out "$work/model.json"
"$bin/mariohctl" apply -model "$work/model.json" -target "$work/hosts.target.graph" -seed 1 -out "$work/golden.hg"

echo "== boot mariohd"
"$bin/mariohd" -addr 127.0.0.1:0 -workers 2 -models-dir "$work/models" -data-dir "$work/data" >"$work/mariohd.log" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$work/mariohd.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "mariohd never reported its address"; cat "$work/mariohd.log"; exit 1
fi
base="http://$addr"
echo "   $base"

echo "== healthz"
ok=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >"$work/health.json" 2>/dev/null; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "healthz never came up"; cat "$work/mariohd.log"; exit 1; }
grep -q '"status":"ok"' "$work/health.json"

echo "== /v1/reconstruct round-trip (byte-identical to the golden run)"
"$bin/mariohctl" push-model -server "$base" -name smoke -model "$work/model.json"
"$bin/mariohctl" remote-reconstruct -server "$base" -model smoke \
    -target "$work/hosts.target.graph" -seed 1 -out "$work/server.hg"
cmp "$work/golden.hg" "$work/server.hg"
echo "   server output is byte-identical to the CLI golden run"

curl -fsS "$base/metrics" | grep -q 'marioh_requests_total'

echo "== sharded /v1/reconstruct (shards fan onto the queue, byte-identical)"
"$bin/mariohctl" remote-reconstruct -server "$base" -model smoke \
    -target "$work/hosts.target.graph" -seed 1 -shards 4 -shard-target 8 -out "$work/server-shard.hg"
cmp "$work/golden.hg" "$work/server-shard.hg"
echo "   sharded server output is byte-identical to the serial golden run"
curl -fsS "$base/metrics" | grep -q 'marioh_sharded_runs_total 1'

echo "== incremental session over /v1/sessions (byte-identical after deltas)"
# A reproducible delta stream against the same reduced target graph, plus
# a from-scratch golden of the mutated graph through the CLI.
"$bin/datagen" -dataset hosts -seed 1 -reduced -deltas 30 -out "$work"
"$bin/mariohctl" mutate -graph "$work/hosts.target.graph" -deltas "$work/hosts.target.deltas" \
    -out "$work/hosts.mutated.graph"
"$bin/mariohctl" apply -model "$work/model.json" -target "$work/hosts.mutated.graph" \
    -seed 1 -out "$work/mutated.golden.hg"
# Replay the stream in batches through a server-side session.
"$bin/mariohctl" session -server "$base" -model smoke -graph "$work/hosts.target.graph" \
    -deltas "$work/hosts.target.deltas" -batch 10 -seed 1 -out "$work/session.hg"
cmp "$work/mutated.golden.hg" "$work/session.hg"
echo "   session output is byte-identical to a from-scratch rebuild of the mutated graph"
curl -fsS "$base/metrics" | grep -q 'marioh_session_applies_total 3'
curl -fsS "$base/metrics" | grep -q 'marioh_session_created_total 1'

echo "== durable session survives kill -9 (WAL recovery, byte-identical)"
"$bin/mariohctl" session -server "$base" -model smoke -graph "$work/hosts.target.graph" \
    -deltas "$work/hosts.target.deltas" -batch 10 -seed 1 -keep \
    -out "$work/durable.hg" | tee "$work/durable.log"
sid=$(sed -n 's/^opened session \(s-[0-9]*\).*/\1/p' "$work/durable.log")
[ -n "$sid" ] || { echo "no session id captured"; exit 1; }
cmp "$work/mutated.golden.hg" "$work/durable.hg"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   killed mariohd with SIGKILL (no shutdown hook ran)"

echo "== restart mariohd over the same data-dir"
"$bin/mariohd" -addr 127.0.0.1:0 -workers 2 -models-dir "$work/models" -data-dir "$work/data" >"$work/mariohd2.log" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$work/mariohd2.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "restarted mariohd never reported its address"; cat "$work/mariohd2.log"; exit 1
fi
base="http://$addr"
ok=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >"$work/health2.json" 2>/dev/null; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "healthz never came up after restart"; cat "$work/mariohd2.log"; exit 1; }
grep -q '"parked":1' "$work/health2.json"
# Resume the session (the daemon rehydrates it from snapshot + WAL) and
# re-emit its final state: it must match the pre-crash output byte for
# byte.
"$bin/mariohctl" session -server "$base" -model smoke -session "$sid" -seed 1 \
    -out "$work/resumed.hg" | sed 's/^/   /'
cmp "$work/mutated.golden.hg" "$work/resumed.hg"
curl -fsS "$base/metrics" | grep -q 'marioh_recovery_total{outcome='
echo "   recovered session output is byte-identical after kill -9"

echo "== graceful shutdown (SIGTERM drains, exit 0)"
# Leave an async job racing the shutdown so the drain has work to do; the
# client's polling may lose the race once the daemon stops serving.
"$bin/mariohctl" remote-reconstruct -server "$base" -model smoke \
    -target "$work/hosts.target.graph" -seed 1 -async -out "$work/async.hg" \
    >/dev/null 2>&1 || true &
client_pid=$!
sleep 0.2
kill -TERM "$daemon_pid"
code=0
wait "$daemon_pid" || code=$?
daemon_pid=""
if [ "$code" -ne 0 ]; then
    echo "mariohd exited $code after SIGTERM"; cat "$work/mariohd2.log"; exit 1
fi
grep -q "drained cleanly" "$work/mariohd2.log"
wait "$client_pid" 2>/dev/null || true

echo "smoke ok"
